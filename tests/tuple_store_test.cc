#include "exec/tuple_store.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace punctsafe {
namespace {

TEST(TupleStoreTest, InsertAndProbe) {
  TupleStore store({0});
  size_t s1 = store.Insert(Tuple({Value(1), Value(10)}));
  size_t s2 = store.Insert(Tuple({Value(1), Value(20)}));
  size_t s3 = store.Insert(Tuple({Value(2), Value(30)}));
  EXPECT_EQ(store.live_count(), 3u);
  EXPECT_TRUE(store.IsLive(s1));

  auto hits = store.Probe(0, Value(1));
  EXPECT_EQ(std::set<size_t>(hits.begin(), hits.end()),
            (std::set<size_t>{s1, s2}));
  EXPECT_EQ(store.Probe(0, Value(2)), (std::vector<size_t>{s3}));
  EXPECT_TRUE(store.Probe(0, Value(9)).empty());
}

TEST(TupleStoreTest, RemoveIsIdempotentAndHidesFromProbe) {
  TupleStore store({0});
  size_t s1 = store.Insert(Tuple({Value(1)}));
  store.Remove(s1);
  store.Remove(s1);
  EXPECT_EQ(store.live_count(), 0u);
  EXPECT_FALSE(store.IsLive(s1));
  EXPECT_TRUE(store.Probe(0, Value(1)).empty());
  // The tuple data stays addressable (slot ids stable).
  EXPECT_EQ(store.At(s1), Tuple({Value(1)}));
}

TEST(TupleStoreTest, MultipleIndexes) {
  TupleStore store({0, 2});
  size_t s = store.Insert(Tuple({Value(1), Value(2), Value(3)}));
  EXPECT_EQ(store.Probe(0, Value(1)), (std::vector<size_t>{s}));
  EXPECT_EQ(store.Probe(2, Value(3)), (std::vector<size_t>{s}));
}

TEST(TupleStoreTest, ForEachLiveSkipsRemoved) {
  TupleStore store({0});
  size_t s1 = store.Insert(Tuple({Value(1)}));
  store.Insert(Tuple({Value(2)}));
  store.Remove(s1);
  size_t visits = 0;
  store.ForEachLive([&](size_t slot, const Tuple& t) {
    ++visits;
    EXPECT_NE(slot, s1);
    EXPECT_EQ(t, Tuple({Value(2)}));
  });
  EXPECT_EQ(visits, 1u);
}

TEST(TupleStoreTest, PurgeSlotsCountsOnlyLive) {
  TupleStore store({0});
  size_t s1 = store.Insert(Tuple({Value(1)}));
  size_t s2 = store.Insert(Tuple({Value(2)}));
  store.Remove(s1);
  store.PurgeSlots({s1, s2});
  EXPECT_EQ(store.metrics().purged, 1u);
  EXPECT_EQ(store.live_count(), 0u);
}

TEST(TupleStoreTest, MetricsTrackHighWater) {
  TupleStore store({0});
  size_t a = store.Insert(Tuple({Value(1)}));
  store.Insert(Tuple({Value(2)}));
  store.PurgeSlots({a});
  store.Insert(Tuple({Value(3)}));
  const StateMetrics& m = store.metrics();
  EXPECT_EQ(m.inserted, 3u);
  EXPECT_EQ(m.purged, 1u);
  EXPECT_EQ(m.live, 2u);
  EXPECT_EQ(m.high_water, 2u);
  store.CountDroppedArrival();
  EXPECT_EQ(store.metrics().dropped_on_arrival, 1u);
}

TEST(TupleStoreTest, IndexCompactionKeepsProbesCorrect) {
  TupleStore store({0});
  // Insert and purge enough to trigger compaction several times.
  std::vector<size_t> slots;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      slots.push_back(store.Insert(Tuple({Value(i % 7), Value(i)})));
    }
    store.PurgeSlots(slots);
    slots.clear();
  }
  EXPECT_EQ(store.live_count(), 0u);
  // One survivor among the debris.
  size_t keep = store.Insert(Tuple({Value(3), Value(999)}));
  EXPECT_EQ(store.Probe(0, Value(3)), (std::vector<size_t>{keep}));
}

TEST(TupleStoreTest, ProbeEachAndProbeIntoAgreeWithProbe) {
  TupleStore store({0});
  // Interleave inserts and removes so buckets carry tombstones.
  std::vector<size_t> slots;
  for (int i = 0; i < 200; ++i) {
    slots.push_back(store.Insert(Tuple({Value(i % 13), Value(i)})));
  }
  for (size_t i = 0; i < slots.size(); i += 3) store.Remove(slots[i]);

  std::vector<size_t> scratch;
  for (int k = 0; k < 13; ++k) {
    Value key(k);
    std::vector<size_t> legacy = store.Probe(0, key);
    std::vector<size_t> each;
    store.ProbeEach(0, key,
                    [&](size_t slot, const Tuple& t) {
                      EXPECT_EQ(t.at(0), key);
                      each.push_back(slot);
                    });
    store.ProbeInto(0, key, &scratch);
    EXPECT_EQ(each, legacy) << "ProbeEach vs Probe on key " << k;
    EXPECT_EQ(scratch, legacy) << "ProbeInto vs Probe on key " << k;
  }
}

TEST(TupleStoreTest, ProbeFilteringTriggersCompaction) {
  TupleStore store({0});
  // Plenty of live tuples on other keys keeps the *remove-path*
  // trigger quiet (dead never outnumbers live by kCompactDeadFactor)...
  for (int i = 0; i < 1000; ++i) {
    store.Insert(Tuple({Value(1000 + i), Value(i)}));
  }
  // ...while one hot key accumulates enough tombstones that a single
  // probe filters >= kCompactMinDead dead slots and no live ones: the
  // probe-path trigger must schedule a rebuild.
  std::vector<size_t> hot;
  for (size_t i = 0; i < TupleStore::kCompactMinDead + 10; ++i) {
    hot.push_back(store.Insert(Tuple({Value(7), Value(static_cast<int64_t>(i))})));
  }
  for (size_t slot : hot) store.Remove(slot);
  EXPECT_EQ(store.metrics().index_compactions, 0u);

  // First probe walks the tombstones and schedules; the next executes.
  store.ProbeEach(0, Value(7), [](size_t, const Tuple&) { FAIL(); });
  store.ProbeEach(0, Value(7), [](size_t, const Tuple&) { FAIL(); });
  EXPECT_GE(store.metrics().index_compactions, 1u);

  // Compaction must not disturb live data.
  EXPECT_EQ(store.live_count(), 1000u);
  EXPECT_EQ(store.Probe(0, Value(1003)).size(), 1u);
  size_t back = store.Insert(Tuple({Value(7), Value(-1)}));
  EXPECT_EQ(store.Probe(0, Value(7)), (std::vector<size_t>{back}));
}

TEST(TupleStoreTest, CompactionInvariantsUnderInterleavedInsertPurge) {
  TupleStore store({0, 1});
  std::vector<size_t> slots;
  for (int round = 0; round < 6; ++round) {
    slots.clear();
    for (int i = 0; i < 150; ++i) {
      slots.push_back(store.Insert(
          Tuple({Value(i % 5), Value("s" + std::to_string(i % 3))})));
    }
    // Purge every other slot, probe in between so probe- and
    // remove-path triggers interleave.
    std::vector<size_t> purge;
    for (size_t i = 0; i < slots.size(); i += 2) purge.push_back(slots[i]);
    store.PurgeSlots(purge);
    size_t live_hits = 0;
    store.ProbeEach(0, Value(2),
                    [&](size_t slot, const Tuple&) {
                      EXPECT_TRUE(store.IsLive(slot));
                      ++live_hits;
                    });
    EXPECT_EQ(live_hits, store.Probe(0, Value(2)).size());
    EXPECT_EQ(store.Probe(1, Value("s1")).size(),
              store.Probe(1, Value(std::string("s1"))).size());
  }
  // Dense live bookkeeping stayed consistent with the indexes.
  size_t via_iter = 0;
  store.ForEachLive([&](size_t, const Tuple&) { ++via_iter; });
  EXPECT_EQ(via_iter, store.live_count());
}

TEST(TupleStoreTest, CachedHashIsTypeStrict) {
  TupleStore store({0});
  size_t as_int = store.Insert(Tuple({Value(static_cast<int64_t>(5))}));
  size_t as_str = store.Insert(Tuple({Value("5")}));
  store.Insert(Tuple({Value(5.0)}));

  // int64, double, and string keys with the "same" spelling are three
  // distinct values: probes must not cross types even if hashes were
  // ever to collide (probes re-check equality, and Value equality is
  // type-strict).
  EXPECT_EQ(store.Probe(0, Value(static_cast<int64_t>(5))),
            (std::vector<size_t>{as_int}));
  EXPECT_EQ(store.Probe(0, Value("5")), (std::vector<size_t>{as_str}));
  EXPECT_EQ(store.Probe(0, Value(5.0)).size(), 1u);
  bool any = store.AnyMatch(0, Value(static_cast<int64_t>(5)),
                            [](const Tuple& t) {
                              return t.at(0) == Value(static_cast<int64_t>(5));
                            });
  EXPECT_TRUE(any);
  // Equal values hash equally regardless of how they were built.
  EXPECT_EQ(Value("abc").Hash(), Value(std::string("abc")).Hash());
  EXPECT_NE(Value(static_cast<int64_t>(5)).Hash(), Value(5.0).Hash());
}

TEST(TupleStoreTest, SteadyStateProbesNeverAllocate) {
  TupleStore store({0});
  for (int i = 0; i < 500; ++i) {
    store.Insert(Tuple({Value(i % 11), Value(i)}));
  }
  std::vector<size_t> scratch;
  uint64_t sink = 0;
  for (int i = 0; i < 2000; ++i) {
    store.ProbeEach(0, Value(i % 11), [&](size_t, const Tuple&) { ++sink; });
    store.ProbeInto(0, Value(i % 11), &scratch);
    sink += scratch.size();
    sink += store.AnyMatch(0, Value(i % 11),
                           [](const Tuple&) { return true; });
  }
  EXPECT_GT(sink, 0u);
  // The pinned property: the cursor paths count probes but never a
  // probe allocation; only the legacy Probe() does.
  EXPECT_GT(store.metrics().probes, 0u);
  EXPECT_EQ(store.metrics().probe_allocs, 0u);
  store.Probe(0, Value(3));
  EXPECT_EQ(store.metrics().probe_allocs, 1u);
}

TEST(TupleStoreTest, NoIndexes) {
  TupleStore store({});
  store.Insert(Tuple({Value(1)}));
  store.Insert(Tuple({Value(2)}));
  size_t count = 0;
  store.ForEachLive([&](size_t, const Tuple&) { ++count; });
  EXPECT_EQ(count, 2u);
}

// A string longer than Value::kInlineStringCap, so arena mode stores
// its bytes as external payload in the arena block.
std::string LongKey(int i) {
  return "long-string-payload-well-past-inline-" + std::to_string(i);
}

TEST(TupleStoreTest, StringValuesSurviveCompactionAndEpochReclaim) {
  // The lifetime contract under ASan: string views obtained from
  // probes stay valid across index compaction and across the removal
  // of *other* tuples, until the next AdvanceEpoch. Survivors keep
  // their bytes across epoch advances too.
  TupleStore store({0});
  ASSERT_TRUE(store.arena_enabled());

  // One survivor, then enough doomed same-key tuples to trip the
  // probe-path compaction trigger once they die.
  size_t keeper = store.Insert(Tuple({Value(LongKey(-1)), Value(1)}));
  std::vector<size_t> doomed;
  for (size_t i = 0; i < TupleStore::kCompactMinDead + 10; ++i) {
    doomed.push_back(
        store.Insert(Tuple({Value(LongKey(static_cast<int>(i))), Value(2)})));
  }

  // Capture a view of the survivor's string before anything dies.
  std::string_view held;
  store.ProbeEach(0, Value(LongKey(-1)),
                  [&](size_t, const Tuple& t) { held = t.at(0).AsString(); });
  ASSERT_EQ(held, LongKey(-1));

  for (size_t slot : doomed) store.Remove(slot);
  // Probing a doomed key filters >= kCompactMinDead tombstones and
  // compacts the index; the held view must still read cleanly
  // (compaction touches index buckets, never tuple payloads).
  store.ProbeEach(0, Value(LongKey(0)), [](size_t, const Tuple&) { FAIL(); });
  store.ProbeEach(0, Value(LongKey(0)), [](size_t, const Tuple&) { FAIL(); });
  EXPECT_EQ(held, LongKey(-1));

  // Epoch boundary: doomed payloads are reclaimed wholesale, the
  // survivor's bytes must be untouched (its block still has live
  // units).
  store.AdvanceEpoch();
  EXPECT_EQ(store.At(keeper).at(0).AsString(), LongKey(-1));
  size_t hits = 0;
  store.ProbeEach(0, Value(LongKey(-1)), [&](size_t, const Tuple& t) {
    EXPECT_EQ(t.at(0).AsString(), LongKey(-1));
    ++hits;
  });
  EXPECT_EQ(hits, 1u);
  // Dead slots read as empty after the epoch advance, not as garbage.
  EXPECT_EQ(store.At(doomed[0]).size(), 0u);
}

TEST(TupleStoreTest, RemovedStringsStayReadableUntilEpochAdvance) {
  // Within a processing step, even a *removed* tuple's payload is
  // addressable (deferred release) — MJoin may still hold a reference
  // from the probe that matched it earlier in the step.
  TupleStore store({0});
  ASSERT_TRUE(store.arena_enabled());
  size_t slot = store.Insert(Tuple({Value(LongKey(42)), Value(7)}));
  const Tuple& ref = store.At(slot);
  std::string_view view = ref.at(0).AsString();
  store.Remove(slot);
  EXPECT_EQ(view, LongKey(42));  // ASan would flag a premature free
  EXPECT_EQ(ref.at(1).AsInt64(), 7);
  store.AdvanceEpoch();
  EXPECT_EQ(store.At(slot).size(), 0u);
}

TEST(TupleStoreTest, SteadyStateInsertAllocsReachZeroWithArena) {
  // The headline arena property: once the block working set exists,
  // insert/purge cycles recycle blocks through the free list and
  // inserts stop allocating entirely.
  TupleStore store({0});
  ASSERT_TRUE(store.arena_enabled());
  auto run_round = [&store](int round) {
    std::vector<size_t> slots;
    for (int i = 0; i < 500; ++i) {
      slots.push_back(store.Insert(
          Tuple({Value(i % 17), Value(LongKey(i)), Value(round)})));
    }
    for (size_t slot : slots) store.Remove(slot);
    store.AdvanceEpoch();
  };
  run_round(0);  // warmup builds the block working set
  uint64_t allocs_after_warmup = store.metrics().Snapshot().insert_allocs;
  for (int round = 1; round < 4; ++round) run_round(round);
  StateMetricsSnapshot snap = store.metrics().Snapshot();
  EXPECT_EQ(snap.insert_allocs, allocs_after_warmup)
      << "steady-state inserts must not allocate";
  EXPECT_GT(snap.arena_blocks_reclaimed, 0u);
  EXPECT_EQ(snap.arena_bytes_live, 0u);
  EXPECT_GT(snap.arena_bytes_reserved, 0u);
}

TEST(TupleStoreTest, HeapModeCountsPerInsertAllocs) {
  TupleStore store({0}, TupleStoreOptions{.arena = false});
  EXPECT_FALSE(store.arena_enabled());
  store.Insert(Tuple({Value(1), Value(2)}));
  StateMetricsSnapshot snap = store.metrics().Snapshot();
  EXPECT_EQ(snap.insert_allocs, 1u);  // the value vector
  store.Insert(Tuple({Value(LongKey(0)), Value(LongKey(1))}));
  snap = store.metrics().Snapshot();
  EXPECT_EQ(snap.insert_allocs, 4u);  // vector + two long strings
  EXPECT_EQ(snap.arena_bytes_reserved, 0u);
  EXPECT_EQ(snap.arena_blocks_reclaimed, 0u);
}

TEST(TupleStoreTest, ArenaOffOnParity) {
  // Identical operation sequences must observe identical contents in
  // both storage modes.
  TupleStore with_arena({0});
  TupleStore without({0}, TupleStoreOptions{.arena = false});
  for (TupleStore* store : {&with_arena, &without}) {
    std::vector<size_t> slots;
    for (int i = 0; i < 200; ++i) {
      slots.push_back(store->Insert(
          Tuple({Value(i % 7), Value(LongKey(i % 13)), Value(i)})));
    }
    for (size_t i = 0; i < slots.size(); i += 3) store->Remove(slots[i]);
    store->AdvanceEpoch();
  }
  ASSERT_EQ(with_arena.live_count(), without.live_count());
  for (int key = 0; key < 7; ++key) {
    std::multiset<std::string> a, b;
    with_arena.ProbeEach(0, Value(key), [&](size_t, const Tuple& t) {
      a.insert(t.ToString());
    });
    without.ProbeEach(0, Value(key), [&](size_t, const Tuple& t) {
      b.insert(t.ToString());
    });
    EXPECT_EQ(a, b) << "key " << key;
  }
}

}  // namespace
}  // namespace punctsafe
