// Exporter round trip: the observability snapshot must agree with the
// operators' own StateMetrics/OperatorMetrics, the JSONL line must
// carry those numbers (parsed back here with no JSON library — the
// schema is flat enough for substring extraction, which doubles as a
// schema pin), and under the parallel executor every shard entry must
// contain non-empty latency and punctuation-lag histograms — the
// acceptance criterion for the per-shard quantile surface.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "obs/exporter.h"
#include "test_util.h"
#include "util/logging.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

// Extracts the number right after `"key":` starting at `from`.
// Returns npos-armed -1 when the key is absent.
int64_t ExtractInt(const std::string& line, const std::string& key,
                   size_t from = 0) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle, from);
  if (pos == std::string::npos) return -1;
  pos += needle.size();
  size_t end = pos;
  while (end < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[end])) ||
          line[end] == '-')) {
    ++end;
  }
  return std::stoll(line.substr(pos, end - pos));
}

size_t CountOccurrences(const std::string& line, const std::string& sub) {
  size_t n = 0;
  for (size_t pos = line.find(sub); pos != std::string::npos;
       pos = line.find(sub, pos + sub.size())) {
    ++n;
  }
  return n;
}

struct SerialFixture {
  StreamCatalog catalog;
  std::unique_ptr<PlanExecutor> exec;

  static SerialFixture Make(bool observe) {
    SerialFixture fx;
    fx.catalog = PaperCatalog();
    ContinuousJoinQuery q = TriangleQuery(fx.catalog);
    ExecutorConfig config;
    config.keep_results = true;
    config.observe.enabled = observe;
    auto exec = PlanExecutor::Create(q, Fig5Schemes(fx.catalog),
                                     PlanShape::SingleMJoin(3), config);
    PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
    fx.exec = std::move(*exec);
    return fx;
  }

  // One triangle match + one punctuation per stream.
  void Feed() {
    exec->PushTuple(0, Tuple({Value(1), Value(2)}), 1);
    exec->PushTuple(1, Tuple({Value(2), Value(3)}), 2);
    exec->PushTuple(2, Tuple({Value(3), Value(1)}), 3);
    // Fig5Schemes: S1 punctuates on B, S2 on C, S3 on A.
    exec->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(2)}}),
                          4);
    exec->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(3)}}),
                          5);
    exec->PushPunctuation(2, Punctuation::OfConstants(2, {{1, Value(1)}}),
                          6);
    exec->SweepAll(7);
  }
};

TEST(ObsSnapshotTest, SerialCountersMatchOperatorMetrics) {
  SerialFixture fx = SerialFixture::Make(true);
  fx.Feed();

  obs::ObsSnapshot snap = fx.exec->ObservabilitySnapshot();
  EXPECT_EQ(snap.executor, "serial");
  EXPECT_EQ(snap.results, fx.exec->num_results());
  EXPECT_EQ(snap.live_tuples, fx.exec->TotalLiveTuples());
  EXPECT_EQ(snap.tuple_high_water, fx.exec->tuple_high_water());
  ASSERT_EQ(snap.operators.size(), 1u);

  const obs::OperatorObsEntry& e = snap.operators[0];
  const MJoinOperator& op = *fx.exec->operators()[0];
  StateMetricsSnapshot state = op.AggregateStateSnapshot();
  OperatorMetricsSnapshot om = op.metrics().Snapshot();
  EXPECT_EQ(e.state.inserted, state.inserted);
  EXPECT_EQ(e.state.purged, state.purged);
  EXPECT_EQ(e.op_metrics.results_emitted, om.results_emitted);
  EXPECT_EQ(e.op_metrics.punctuations_received, om.punctuations_received);
  EXPECT_EQ(om.punctuations_received, 3u);

  // One latency sample per pushed tuple; one lag sample per
  // punctuation; the sweep histogram saw SweepAll.
  EXPECT_EQ(e.latency_ns.Count(), 3u);
  EXPECT_EQ(e.punct_lag.Count(), 3u);
  EXPECT_GE(e.sweep_ns.Count(), 1u);
  // Punctuation at ts covers tuples seen up to logical time 3; the
  // lag of the first punctuation (value ts 4, max tuple ts 3) is 0
  // after clamping, so only assert the histogram is populated and its
  // max is sane (< the whole logical horizon).
  EXPECT_LE(e.punct_lag.max, 3u);
  EXPECT_GT(e.trace_recorded, 0u);
}

TEST(ObsSnapshotTest, ObserveOffYieldsEmptyOperatorList) {
  SerialFixture fx = SerialFixture::Make(false);
  fx.Feed();
  EXPECT_EQ(fx.exec->observability(), nullptr);
  obs::ObsSnapshot snap = fx.exec->ObservabilitySnapshot();
  EXPECT_EQ(snap.executor, "serial");
  EXPECT_TRUE(snap.operators.empty());
  // The executor-level gauges still work without the obs layer.
  EXPECT_EQ(snap.results, fx.exec->num_results());
}

TEST(ObsSnapshotTest, DrainTracesSeesTuplesAndPunctuations) {
  SerialFixture fx = SerialFixture::Make(true);
  fx.Feed();
  std::vector<obs::TraceRecord> records;
  ASSERT_NE(fx.exec->observability(), nullptr);
  size_t n = fx.exec->observability()->DrainTraces(&records);
  EXPECT_EQ(n, records.size());
  size_t tuples = 0, puncts = 0, sweeps = 0;
  for (const obs::TraceRecord& r : records) {
    if (r.kind == obs::TraceKind::kTupleIn) ++tuples;
    if (r.kind == obs::TraceKind::kPunctIn) ++puncts;
    if (r.kind == obs::TraceKind::kPurgeSweep) ++sweeps;
  }
  EXPECT_EQ(tuples, 3u);
  EXPECT_EQ(puncts, 3u);
  EXPECT_GE(sweeps, 1u);
  // Draining again returns nothing new until more events arrive.
  std::vector<obs::TraceRecord> again;
  EXPECT_EQ(fx.exec->observability()->DrainTraces(&again), 0u);
}

TEST(RenderJsonLineTest, SchemaCarriesCountersAndQuantiles) {
  SerialFixture fx = SerialFixture::Make(true);
  fx.Feed();
  obs::ObsSnapshot snap = fx.exec->ObservabilitySnapshot();
  snap.wall_ms = 1234;
  snap.seq = 7;
  std::string line = obs::RenderJsonLine(snap);

  EXPECT_EQ(ExtractInt(line, "wall_ms"), 1234);
  EXPECT_EQ(ExtractInt(line, "seq"), 7);
  EXPECT_NE(line.find("\"executor\":\"serial\""), std::string::npos);
  EXPECT_EQ(ExtractInt(line, "results"),
            static_cast<int64_t>(snap.results));
  EXPECT_EQ(ExtractInt(line, "live_tuples"),
            static_cast<int64_t>(snap.live_tuples));

  // One operator object carrying each of the four histograms, each
  // with the full quantile set.
  ASSERT_EQ(snap.operators.size(), 1u);
  for (const char* h :
       {"latency_ns", "punct_lag", "sweep_ns", "queue_depth"}) {
    size_t pos = line.find(std::string("\"") + h + "\":{");
    ASSERT_NE(pos, std::string::npos) << h;
    for (const char* q : {"count", "mean", "p50", "p95", "p99", "max"}) {
      EXPECT_NE(line.find(std::string("\"") + q + "\":", pos),
                std::string::npos)
          << h << "." << q;
    }
  }

  // The counters inside the operator object round-trip numerically.
  size_t ops_pos = line.find("\"operators\":[");
  ASSERT_NE(ops_pos, std::string::npos);
  const obs::OperatorObsEntry& e = snap.operators[0];
  EXPECT_EQ(ExtractInt(line, "inserted", ops_pos),
            static_cast<int64_t>(e.state.inserted));
  EXPECT_EQ(ExtractInt(line, "results_emitted", ops_pos),
            static_cast<int64_t>(e.op_metrics.results_emitted));
  EXPECT_EQ(ExtractInt(line, "puncts_received", ops_pos),
            static_cast<int64_t>(e.op_metrics.punctuations_received));
  size_t lat_pos = line.find("\"latency_ns\":{", ops_pos);
  EXPECT_EQ(ExtractInt(line, "count", lat_pos),
            static_cast<int64_t>(e.latency_ns.Count()));
}

TEST(MetricsExporterTest, ExportNowWritesSequencedLines) {
  SerialFixture fx = SerialFixture::Make(true);
  std::ostringstream out;
  PlanExecutor* exec = fx.exec.get();
  obs::MetricsExporter exporter(
      [exec] { return exec->ObservabilitySnapshot(); }, &out);
  ASSERT_TRUE(exporter.ok());

  exporter.ExportNow();
  fx.Feed();
  exporter.ExportNow();
  EXPECT_EQ(exporter.lines_written(), 2u);

  std::istringstream lines(out.str());
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_EQ(ExtractInt(first, "seq"), 1);
  EXPECT_EQ(ExtractInt(second, "seq"), 2);
  EXPECT_EQ(ExtractInt(first, "results"), 0);
  EXPECT_EQ(ExtractInt(second, "results"),
            static_cast<int64_t>(exec->num_results()));
  EXPECT_GT(ExtractInt(second, "wall_ms"), 0);
}

TEST(MetricsExporterTest, BackgroundThreadStopsCleanly) {
  SerialFixture fx = SerialFixture::Make(true);
  std::ostringstream out;
  PlanExecutor* exec = fx.exec.get();
  obs::ExporterOptions options;
  options.interval_ms = 3600 * 1000;  // never fires on its own
  options.export_on_stop = true;
  obs::MetricsExporter exporter(
      [exec] { return exec->ObservabilitySnapshot(); }, &out, options);
  exporter.Start();
  fx.Feed();
  exporter.Stop();  // flushes the final snapshot
  exporter.Stop();  // idempotent
  EXPECT_EQ(exporter.lines_written(), 1u);
  EXPECT_EQ(ExtractInt(out.str(), "results"),
            static_cast<int64_t>(exec->num_results()));
}

// The acceptance criterion: under the parallel executor with real
// sharding, the snapshot has one entry per shard worker and EVERY
// shard's latency and punctuation-lag histograms are populated —
// tuples hash across shards, punctuations broadcast to all of them.
TEST(ParallelObsTest, EveryShardHasLatencyAndPunctLagSamples) {
  StreamCatalog catalog;
  PUNCTSAFE_CHECK_OK(catalog.Register("T0", Schema::OfInts({"k", "a"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("T1", Schema::OfInts({"k", "b"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("T2", Schema::OfInts({"k", "c"})));
  auto q = ContinuousJoinQuery::Create(
      catalog, {"T0", "T1", "T2"},
      {Eq({"T0", "k"}, {"T1", "k"}), Eq({"T1", "k"}, {"T2", "k"})});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  SchemeSet schemes;
  PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "T0", {"k"})));
  PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "T1", {"k"})));
  PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "T2", {"k"})));

  ExecutorConfig config;
  config.mode = ExecutionMode::kParallel;
  config.shards = 2;
  config.observe.enabled = true;
  auto exec_or = ParallelExecutor::Create(*q, schemes,
                                          PlanShape::SingleMJoin(3), config);
  ASSERT_TRUE(exec_or.ok()) << exec_or.status().ToString();
  ParallelExecutor& exec = **exec_or;

  // Enough distinct keys that both hash shards receive tuples.
  constexpr int kKeys = 64;
  for (int k = 0; k < kKeys; ++k) {
    exec.PushTuple(0, Tuple({Value(k), Value(k)}), k);
    exec.PushTuple(1, Tuple({Value(k), Value(k)}), k);
    exec.PushTuple(2, Tuple({Value(k), Value(k)}), k);
    exec.PushPunctuation(
        0, Punctuation::OfConstants(2, {{0, Value(k)}}), k);
  }
  ASSERT_TRUE(exec.Drain(kKeys).ok());
  EXPECT_EQ(exec.num_results(), static_cast<uint64_t>(kKeys));

  obs::ObsSnapshot snap = exec.ObservabilitySnapshot();
  EXPECT_EQ(snap.executor, "parallel");
  ASSERT_EQ(snap.operators.size(), 2u);  // one group, two shards
  uint64_t routed_total = 0;
  for (const obs::OperatorObsEntry& e : snap.operators) {
    EXPECT_TRUE(e.partitioned) << e.partition_detail;
    EXPECT_EQ(e.num_shards, 2u);
    EXPECT_GT(e.latency_ns.Count(), 0u)
        << "shard " << e.shard << " has no latency samples";
    EXPECT_GT(e.punct_lag.Count(), 0u)
        << "shard " << e.shard << " has no punctuation-lag samples";
    // Broadcast: every shard saw every punctuation.
    EXPECT_EQ(e.op_metrics.punctuations_received,
              static_cast<uint64_t>(kKeys));
    routed_total += e.routed_tuples;
  }
  EXPECT_EQ(routed_total, static_cast<uint64_t>(3 * kKeys));

  // The JSONL line carries one operator object per shard, each with
  // latency and punct-lag quantiles (the CI artifact contract).
  std::string line = obs::RenderJsonLine(snap);
  EXPECT_NE(line.find("\"executor\":\"parallel\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(line, "\"latency_ns\":{"), 2u);
  EXPECT_EQ(CountOccurrences(line, "\"punct_lag\":{"), 2u);

  std::vector<obs::TraceRecord> records;
  ASSERT_NE(exec.observability(), nullptr);
  exec.observability()->DrainTraces(&records);
  bool saw_tuple = false, saw_punct = false, saw_batch = false;
  for (const obs::TraceRecord& r : records) {
    saw_tuple |= r.kind == obs::TraceKind::kTupleIn;
    saw_punct |= r.kind == obs::TraceKind::kPunctIn;
    saw_batch |= r.kind == obs::TraceKind::kQueueBatch;
  }
  EXPECT_TRUE(saw_tuple);
  EXPECT_TRUE(saw_punct);
  EXPECT_TRUE(saw_batch);
}

}  // namespace
}  // namespace punctsafe
