#include "stream/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace punctsafe {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, Int64RoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 42);
  Value w(7);  // int literal promotes to int64
  EXPECT_EQ(w.AsInt64(), 7);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(2.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v("hello");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "hello");
}

TEST(ValueTest, EqualityIsTypeStrict) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value(1.0));  // int64 != double
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_NE(Value::Null(), Value(0));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, TotalOrderIsConsistent) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
  // Cross-type order is by type index: null < int64 < double < string.
  EXPECT_LT(Value::Null(), Value(0));
  EXPECT_LT(Value(int64_t{99}), Value(0.0));
  EXPECT_LT(Value(1e18), Value(""));
}

TEST(ValueTest, HashAgreesWithEquality) {
  EXPECT_EQ(Value(5).Hash(), Value(5).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  // Different types with "same" content should not collide trivially.
  EXPECT_NE(Value(1).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, UsableInHashContainers) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(1));
  set.insert(Value(1));
  set.insert(Value("1"));
  set.insert(Value::Null());
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count(Value(1)));
  EXPECT_FALSE(set.count(Value(2)));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(7).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeToString(ValueType::kDouble), "double");
}

}  // namespace
}  // namespace punctsafe
