// Batched execution primitives and their equivalence contracts:
//  * TupleBatch — the unit of batched hand-off (hash column, selection
//    vector, storage recycling);
//  * simd helpers — MatchTags16 / HashRunLength against their scalar
//    definitions;
//  * FlatKeyIndex — find/insert/growth over int and string keys;
//  * TupleStore::ProbeBatch / InsertBatch — row-for-row identical to
//    the per-row cursors, selection vectors respected;
//  * JoinOperator::PushBatch — result-identical to per-tuple pushes;
//  * ScatterBatch — per-shard sub-batches agree with ShardOf and keep
//    arrival order;
//  * PlanExecutor ingest batching — buffering is invisible at flush
//    points, and the batch-boundary ordering guarantee holds: results
//    produced from a batch are emitted before any punctuation that
//    arrived after the batch is forwarded.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/plan_safety.h"
#include "exec/flat_index.h"
#include "exec/mjoin.h"
#include "exec/plan_executor.h"
#include "exec/partition_router.h"
#include "exec/simd.h"
#include "exec/tuple_batch.h"
#include "exec/tuple_store.h"
#include "test_util.h"
#include "util/logging.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

TEST(TupleBatchTest, AppendSelectClearRecycles) {
  TupleBatch batch(4);
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.full());

  batch.Append(Tuple({Value(1), Value(10)}), 5);
  batch.Append(Tuple({Value(2), Value(20)}), 3);
  batch.Append(Tuple({Value(3), Value(30)}), 9);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.first_timestamp(), 5);
  EXPECT_EQ(batch.max_timestamp(), 9);
  EXPECT_EQ(batch.tuple(1), Tuple({Value(2), Value(20)}));
  EXPECT_EQ(batch.timestamp(2), 9);

  batch.Append(Tuple({Value(4), Value(40)}), 1);
  EXPECT_TRUE(batch.full());

  batch.SelectAll();
  ASSERT_EQ(batch.selection().size(), 4u);
  EXPECT_EQ(batch.selection()[0], 0u);
  EXPECT_EQ(batch.selection()[3], 3u);

  EXPECT_FALSE(batch.HasHashColumn(0));
  batch.BuildHashColumn(0);
  EXPECT_TRUE(batch.HasHashColumn(0));
  EXPECT_FALSE(batch.HasHashColumn(1));
  ASSERT_EQ(batch.hashes().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.hashes()[i],
              static_cast<uint64_t>(batch.tuple(i).at(0).Hash()));
  }

  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_TRUE(batch.selection().empty());
  EXPECT_FALSE(batch.HasHashColumn(0));
}

TEST(TupleBatchTest, ZeroCapacityNormalizesToOne) {
  TupleBatch batch(0);
  EXPECT_EQ(batch.capacity(), 1u);
  batch.Append(Tuple({Value(1)}), 1);
  EXPECT_TRUE(batch.full());
}

TEST(SimdTest, MatchTags16AgainstScalar) {
  uint8_t tags[16];
  for (int i = 0; i < 16; ++i) tags[i] = static_cast<uint8_t>(i % 5);
  for (uint8_t needle = 0; needle < 6; ++needle) {
    uint32_t want = 0;
    for (int i = 0; i < 16; ++i) {
      if (tags[i] == needle) want |= 1u << i;
    }
    EXPECT_EQ(simd::MatchTags16(tags, needle), want)
        << "needle=" << int{needle};
  }
}

TEST(SimdTest, HashRunLengthAgainstScalar) {
  // Runs of every length 0..n at every alignment, plus a 64-bit
  // pattern whose low 32 bits match the head but whose high bits do
  // not (the SSE2 path compares 32-bit lanes, so this catches a lane
  // stitched together incorrectly).
  auto naive = [](const std::vector<uint64_t>& h) {
    if (h.empty()) return size_t{0};
    size_t i = 1;
    while (i < h.size() && h[i] == h[0]) ++i;
    return i;
  };
  const uint64_t head = 0xDEADBEEF12345678ull;
  const uint64_t low_match = head & 0xFFFFFFFFull;  // differs in high bits
  for (size_t run = 0; run <= 9; ++run) {
    for (size_t tail = 0; tail <= 3; ++tail) {
      std::vector<uint64_t> hashes;
      for (size_t i = 0; i < run; ++i) hashes.push_back(head);
      for (size_t i = 0; i < tail; ++i) {
        hashes.push_back(i % 2 == 0 ? low_match : head + 1 + i);
      }
      if (hashes.empty()) {
        EXPECT_EQ(simd::HashRunLength(nullptr, 0), 0u);
        continue;
      }
      EXPECT_EQ(simd::HashRunLength(hashes.data(), hashes.size()),
                naive(hashes))
          << "run=" << run << " tail=" << tail;
    }
  }
}

TEST(FlatKeyIndexTest, EmptyFindReturnsNull) {
  FlatKeyIndex index;
  EXPECT_TRUE(index.empty());
  Value key(42);
  EXPECT_EQ(index.Find(key.Hash(), key), nullptr);
}

TEST(FlatKeyIndexTest, InsertGrowFindIntAndStringKeys) {
  FlatKeyIndex index;
  // Sequential ints stress the spread (Value keeps them nearly
  // sequential); long strings exercise heap-backed keys across the
  // growth rehashes.
  const size_t kKeys = 500;
  for (size_t i = 0; i < kKeys; ++i) {
    index.FindOrCreate(Value(static_cast<int64_t>(i)))->push_back(i);
    index
        .FindOrCreate(
            Value("key-with-some-longer-payload-" + std::to_string(i)))
        ->push_back(1000 + i);
  }
  EXPECT_EQ(index.size(), 2 * kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    Value ik(static_cast<int64_t>(i));
    const FlatKeyIndex::Bucket* ib = index.Find(ik.Hash(), ik);
    ASSERT_NE(ib, nullptr) << "int key " << i;
    ASSERT_EQ(ib->size(), 1u);
    EXPECT_EQ((*ib)[0], i);
    Value sk("key-with-some-longer-payload-" + std::to_string(i));
    const FlatKeyIndex::Bucket* sb = index.Find(sk.Hash(), sk);
    ASSERT_NE(sb, nullptr) << "string key " << i;
    ASSERT_EQ(sb->size(), 1u);
    EXPECT_EQ((*sb)[0], 1000 + i);
  }
  Value missing(static_cast<int64_t>(kKeys + 7));
  EXPECT_EQ(index.Find(missing.Hash(), missing), nullptr);

  size_t visited = 0;
  index.ForEachEntry(
      [&](const Value&, const FlatKeyIndex::Bucket&) { ++visited; });
  EXPECT_EQ(visited, 2 * kKeys);
}

TEST(FlatKeyIndexTest, FindOrCreateAppendsToSameBucket) {
  FlatKeyIndex index;
  index.Reserve(64);
  for (size_t i = 0; i < 10; ++i) {
    index.FindOrCreate(Value(7))->push_back(i);
  }
  EXPECT_EQ(index.size(), 1u);
  Value key(7);
  const FlatKeyIndex::Bucket* bucket = index.Find(key.Hash(), key);
  ASSERT_NE(bucket, nullptr);
  ASSERT_EQ(bucket->size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ((*bucket)[i], i);
}

// ProbeBatch must visit exactly the (row, slot) pairs a per-row
// ProbeEach loop visits, in the same order — over equal-key runs,
// sparse selections, and both storage backends.
TEST(TupleStoreBatchTest, ProbeBatchMatchesProbeEach) {
  for (bool arena : {false, true}) {
    SCOPED_TRACE(::testing::Message() << "arena=" << (arena ? "on" : "off"));
    TupleStoreOptions options;
    options.arena = arena;
    TupleStore store({0}, options);
    for (int64_t i = 0; i < 40; ++i) {
      store.Insert(Tuple({Value(i % 8), Value(i)}));
    }

    TupleBatch batch(32);
    // Runs of equal keys, singletons, and misses, interleaved.
    const int64_t keys[] = {3, 3, 3, 5, 99, 99, 0, 1, 1, 1, 1, 2, 77, 6};
    int64_t ts = 0;
    for (int64_t k : keys) {
      batch.Append(Tuple({Value(k), Value(100 + ts)}), ts);
      ++ts;
    }
    batch.SelectAll();
    batch.BuildHashColumn(0);

    std::vector<std::pair<uint32_t, size_t>> batched;
    store.ProbeBatch(0, batch, 0, [&](uint32_t row, size_t slot,
                                      const Tuple& t) {
      EXPECT_EQ(t.at(0), batch.tuple(row).at(0));
      batched.emplace_back(row, slot);
    });

    std::vector<std::pair<uint32_t, size_t>> per_row;
    for (uint32_t row : batch.selection()) {
      store.ProbeEach(0, batch.tuple(row).at(0),
                      [&](size_t slot, const Tuple&) {
                        per_row.emplace_back(row, slot);
                      });
    }
    EXPECT_EQ(batched, per_row);
  }
}

TEST(TupleStoreBatchTest, ProbeBatchHonorsSparseSelection) {
  TupleStore store({0});
  for (int64_t i = 0; i < 10; ++i) store.Insert(Tuple({Value(i % 3)}));

  TupleBatch batch(8);
  for (int64_t i = 0; i < 8; ++i) batch.Append(Tuple({Value(i % 3)}), i);
  batch.BuildHashColumn(0);
  // Only rows 1, 2, 6 are selected: a dense pair and an isolated row.
  *batch.mutable_selection() = {1, 2, 6};

  std::vector<uint32_t> probed_rows;
  store.ProbeBatch(0, batch, 0,
                   [&](uint32_t row, size_t, const Tuple&) {
                     probed_rows.push_back(row);
                   });
  for (uint32_t row : probed_rows) {
    EXPECT_TRUE(row == 1 || row == 2 || row == 6) << "row " << row;
  }
  // Every selected key (1 % 3, 2 % 3, 6 % 3 = 0) has matches stored.
  EXPECT_TRUE(std::count(probed_rows.begin(), probed_rows.end(), 1u) > 0);
  EXPECT_TRUE(std::count(probed_rows.begin(), probed_rows.end(), 2u) > 0);
  EXPECT_TRUE(std::count(probed_rows.begin(), probed_rows.end(), 6u) > 0);
}

TEST(TupleStoreBatchTest, ProbeBatchStringKeysSplitHashRunsByKey) {
  TupleStore store({0});
  store.Insert(Tuple({Value("alpha")}));
  store.Insert(Tuple({Value("beta")}));

  TupleBatch batch(4);
  batch.Append(Tuple({Value("alpha")}), 0);
  batch.Append(Tuple({Value("alpha")}), 1);
  batch.Append(Tuple({Value("beta")}), 2);
  batch.SelectAll();
  batch.BuildHashColumn(0);

  std::vector<std::pair<uint32_t, std::string>> hits;
  store.ProbeBatch(0, batch, 0,
                   [&](uint32_t row, size_t, const Tuple& t) {
                     hits.emplace_back(row, t.at(0).AsString());
                   });
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], (std::pair<uint32_t, std::string>{0, "alpha"}));
  EXPECT_EQ(hits[1], (std::pair<uint32_t, std::string>{1, "alpha"}));
  EXPECT_EQ(hits[2], (std::pair<uint32_t, std::string>{2, "beta"}));
}

TEST(TupleStoreBatchTest, InsertBatchRespectsSelection) {
  TupleStore store({0});
  TupleBatch batch(8);
  for (int64_t i = 0; i < 8; ++i) batch.Append(Tuple({Value(i)}), i);
  *batch.mutable_selection() = {0, 3, 7};
  EXPECT_EQ(store.InsertBatch(batch), 3u);
  EXPECT_EQ(store.live_count(), 3u);
  std::vector<int64_t> stored;
  store.ForEachLive([&](size_t, const Tuple& t) {
    stored.push_back(t.at(0).AsInt64());
  });
  std::sort(stored.begin(), stored.end());
  EXPECT_EQ(stored, (std::vector<int64_t>{0, 3, 7}));
}

std::vector<LocalInput> RawInputs(const ContinuousJoinQuery& q,
                                  const SchemeSet& schemes) {
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < q.num_streams(); ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(q, schemes, s)});
  }
  return inputs;
}

// PushBatch is specified as result-identical to per-tuple pushes:
// drive one MJoin per path with the same interleaving and compare the
// emitted elements and the live state.
TEST(OperatorBatchTest, MJoinPushBatchMatchesPushTuple) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);

  auto per_tuple = MJoinOperator::Create(q, RawInputs(q, schemes), {});
  auto batched = MJoinOperator::Create(q, RawInputs(q, schemes), {});
  ASSERT_TRUE(per_tuple.ok() && batched.ok());

  std::vector<Tuple> results_per_tuple;
  std::vector<Tuple> results_batched;
  (*per_tuple)->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results_per_tuple.push_back(e.tuple);
  });
  (*batched)->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results_batched.push_back(e.tuple);
  });

  // Per input: a run of tuples with repeated join keys, pushed as one
  // batch on the batched operator and one-at-a-time on the reference.
  auto feed = [&](size_t input, const std::vector<Tuple>& tuples,
                  int64_t base_ts) {
    TupleBatch batch(tuples.size());
    for (size_t i = 0; i < tuples.size(); ++i) {
      (*per_tuple)->PushTuple(input, tuples[i],
                              base_ts + static_cast<int64_t>(i));
      batch.Append(tuples[i], base_ts + static_cast<int64_t>(i));
    }
    (*batched)->PushBatch(input, batch);
  };
  // S1(A,B), S2(B,C), S3(C,A): repeated B and C values so batches
  // contain equal-key runs, plus non-matching rows.
  feed(0, {Tuple({Value(7), Value(1)}), Tuple({Value(8), Value(1)}),
           Tuple({Value(9), Value(2)})},
       0);
  feed(1, {Tuple({Value(1), Value(5)}), Tuple({Value(1), Value(5)}),
           Tuple({Value(2), Value(6)}), Tuple({Value(3), Value(6)})},
       10);
  feed(2, {Tuple({Value(5), Value(7)}), Tuple({Value(5), Value(8)}),
           Tuple({Value(6), Value(9)}), Tuple({Value(5), Value(99)})},
       20);

  EXPECT_GT(results_per_tuple.size(), 0u);
  EXPECT_EQ(results_batched, results_per_tuple);
  EXPECT_EQ((*batched)->TotalLiveTuples(), (*per_tuple)->TotalLiveTuples());

  // Punctuations between batches purge identically.
  (*per_tuple)->PushPunctuation(
      0, Punctuation::OfConstants(2, {{1, Value(1)}}), 30);
  (*batched)->PushPunctuation(
      0, Punctuation::OfConstants(2, {{1, Value(1)}}), 30);
  EXPECT_EQ((*batched)->TotalLiveTuples(), (*per_tuple)->TotalLiveTuples());
  EXPECT_EQ((*batched)->TotalLivePunctuations(),
            (*per_tuple)->TotalLivePunctuations());
}

TEST(ScatterBatchTest, SubBatchesAgreeWithShardOfAndKeepOrder) {
  PartitionSpec spec;
  spec.partitionable = true;
  spec.hash_offsets = {0, 1};  // input 0 keys on offset 0, input 1 on 1
  const size_t kShards = 4;

  TupleBatch batch(16);
  for (int64_t i = 0; i < 16; ++i) {
    batch.Append(Tuple({Value(i % 6), Value(i)}), 100 + i);
  }
  std::vector<TupleBatch> shards;
  ScatterBatch(spec, /*input=*/0, batch, kShards, &shards);
  ASSERT_EQ(shards.size(), kShards);

  size_t total = 0;
  std::vector<int64_t> seen_ts;
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t i = 0; i < shards[s].size(); ++i) {
      EXPECT_EQ(spec.ShardOf(0, shards[s].tuple(i), kShards), s);
      seen_ts.push_back(shards[s].timestamp(i));
      // Arrival order within a shard is preserved (timestamps were
      // appended in increasing order).
      if (i > 0) {
        EXPECT_LT(shards[s].timestamp(i - 1), shards[s].timestamp(i));
      }
    }
    total += shards[s].size();
  }
  EXPECT_EQ(total, batch.size());

  // Storage is recycled: scattering a smaller batch clears sub-batches.
  TupleBatch small(2);
  small.Append(Tuple({Value(1), Value(1)}), 0);
  ScatterBatch(spec, 0, small, kShards, &shards);
  size_t total_small = 0;
  for (const TupleBatch& sub : shards) total_small += sub.size();
  EXPECT_EQ(total_small, 1u);
}

// The ingest buffer is invisible at flush points: tuples buffer until
// the batch fills, the stream changes, a punctuation arrives, or
// FlushIngest is called — and the batch's results are emitted before
// any punctuation that arrived after the batch is forwarded.
TEST(IngestBatchingTest, BatchFlushedBeforeLaterPunctuation) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);

  auto run = [&](size_t batch_size) {
    ExecutorConfig config;
    config.keep_results = true;
    config.batch_size = batch_size;
    auto exec = PlanExecutor::Create(q, schemes, PlanShape::SingleMJoin(3),
                                     config);
    PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
    // Partner state first: S2(B=2, C=3); S3(C=3, A=a) for a in 0..3.
    (*exec)->PushTuple(1, Tuple({Value(2), Value(3)}), 1);
    for (int64_t a = 0; a < 4; ++a) {
      (*exec)->PushTuple(2, Tuple({Value(3), Value(a)}), 2 + a);
    }
    (*exec)->FlushIngest();
    // The S1 run: (a, 2) completes a triangle for every a.
    for (int64_t a = 0; a < 4; ++a) {
      (*exec)->PushTuple(0, Tuple({Value(a), Value(2)}), 10 + a);
    }
    if (batch_size > 4) {
      // Still buffered: nothing delivered, no results yet.
      EXPECT_EQ((*exec)->num_results(), 0u);
    }
    // A punctuation arriving *after* the S1 run closes S1.B = 2. The
    // open batch must be flushed (and its 4 results emitted) before
    // the punctuation is processed — a punctuation-first order would
    // let the purge drop the matching partner state and lose results.
    (*exec)->PushPunctuation(
        0, Punctuation::OfConstants(2, {{1, Value(2)}}), 20);
    std::vector<Tuple> results = (*exec)->kept_results();
    std::sort(results.begin(), results.end());
    return std::make_pair((*exec)->num_results(), results);
  };

  auto [ref_count, ref_results] = run(1);
  EXPECT_EQ(ref_count, 4u);
  for (size_t batch_size : {2u, 64u, 1024u}) {
    SCOPED_TRACE(::testing::Message() << "batch_size=" << batch_size);
    auto [count, results] = run(batch_size);
    EXPECT_EQ(count, ref_count);
    EXPECT_EQ(results, ref_results);
  }
}

TEST(IngestBatchingTest, ExplicitFlushDeliversBufferedTuples) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  ExecutorConfig config;
  config.batch_size = 64;
  auto exec = PlanExecutor::Create(q, Fig5Schemes(catalog),
                                   PlanShape::SingleMJoin(3), config);
  ASSERT_TRUE(exec.ok());

  for (int64_t i = 0; i < 5; ++i) {
    (*exec)->PushTuple(0, Tuple({Value(i), Value(i)}), i);
  }
  EXPECT_EQ((*exec)->TotalLiveTuples(), 0u);  // buffered
  (*exec)->FlushIngest();
  EXPECT_EQ((*exec)->TotalLiveTuples(), 5u);
  (*exec)->FlushIngest();  // no-op on empty
  EXPECT_EQ((*exec)->TotalLiveTuples(), 5u);

  // A stream change flushes the open batch by itself.
  (*exec)->PushTuple(1, Tuple({Value(9), Value(9)}), 10);
  (*exec)->PushTuple(0, Tuple({Value(8), Value(8)}), 11);
  EXPECT_EQ((*exec)->TotalLiveTuples(), 6u);  // S2 row delivered
  (*exec)->FlushIngest();
  EXPECT_EQ((*exec)->TotalLiveTuples(), 7u);
}

}  // namespace
}  // namespace punctsafe
