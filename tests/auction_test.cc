#include "workload/auction.h"

#include <gtest/gtest.h>

#include "exec/input_manager.h"

namespace punctsafe {
namespace {

TEST(AuctionTest, SetupRegistersStreamsAndSchemes) {
  QueryRegister reg;
  ASSERT_TRUE(AuctionWorkload::Setup(&reg).ok());
  EXPECT_TRUE(reg.catalog().Contains("item"));
  EXPECT_TRUE(reg.catalog().Contains("bid"));
  EXPECT_EQ(reg.schemes().size(), 2u);
}

TEST(AuctionTest, TraceShapeAndContracts) {
  AuctionConfig config;
  config.num_items = 50;
  config.bids_per_item = 4;
  config.max_open = 8;
  Trace trace = AuctionWorkload::Generate(config);

  size_t items = 0, bids = 0, item_puncts = 0, bid_puncts = 0;
  int64_t last_ts = -1;
  for (const TraceEvent& e : trace) {
    EXPECT_GT(e.element.timestamp, last_ts);  // strictly increasing
    last_ts = e.element.timestamp;
    if (e.stream == AuctionWorkload::kItemStream) {
      if (e.element.is_tuple()) {
        EXPECT_TRUE(e.element.tuple.MatchesSchema(AuctionWorkload::ItemSchema())
                        .ok());
        ++items;
      } else {
        ++item_puncts;
      }
    } else {
      if (e.element.is_tuple()) {
        EXPECT_TRUE(
            e.element.tuple.MatchesSchema(AuctionWorkload::BidSchema()).ok());
        ++bids;
      } else {
        ++bid_puncts;
      }
    }
  }
  EXPECT_EQ(items, 50u);
  EXPECT_EQ(bids, 200u);
  EXPECT_EQ(item_puncts, 50u);  // one per unique item
  EXPECT_EQ(bid_puncts, 50u);   // one per auction close
}

TEST(AuctionTest, PunctuationContractHolds) {
  // After an item punctuation for itemid = x, no further item tuple
  // carries x; after a bid-close punctuation, no further bid does.
  AuctionConfig config;
  config.num_items = 80;
  Trace trace = AuctionWorkload::Generate(config);
  std::set<int64_t> closed_items, closed_bids;
  for (const TraceEvent& e : trace) {
    bool is_item = e.stream == AuctionWorkload::kItemStream;
    if (e.element.is_punctuation()) {
      const Punctuation& p = e.element.punctuation;
      (is_item ? closed_items : closed_bids)
          .insert(p.pattern(1).constant().AsInt64());
    } else {
      int64_t itemid = e.element.tuple.at(1).AsInt64();
      if (is_item) {
        EXPECT_FALSE(closed_items.count(itemid)) << "item after punct";
      } else {
        EXPECT_FALSE(closed_bids.count(itemid)) << "bid after close";
      }
    }
  }
}

TEST(AuctionTest, DeterministicPerSeed) {
  AuctionConfig config;
  config.num_items = 20;
  Trace a = AuctionWorkload::Generate(config);
  Trace b = AuctionWorkload::Generate(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stream, b[i].stream);
    EXPECT_EQ(a[i].element.ToString(), b[i].element.ToString());
  }
  config.seed = 99;
  Trace c = AuctionWorkload::Generate(config);
  EXPECT_NE(a.size(), 0u);
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = !(a[i].element.ToString() == c[i].element.ToString());
  }
  EXPECT_TRUE(differs);
}

TEST(AuctionTest, DropRateSuppressesPunctuations) {
  AuctionConfig config;
  config.num_items = 100;
  config.punctuation_drop_rate = 1.0;  // drop everything
  Trace trace = AuctionWorkload::Generate(config);
  for (const TraceEvent& e : trace) {
    EXPECT_TRUE(e.element.is_tuple());
  }
}

// End-to-end Experiment E1 in miniature: with punctuations the join
// state stays near the open-auction window; without them it grows to
// the full input size.
TEST(AuctionTest, BoundedStateWithPunctuations) {
  AuctionConfig config;
  config.num_items = 200;
  config.bids_per_item = 5;
  config.max_open = 10;

  QueryRegister reg;
  ASSERT_TRUE(AuctionWorkload::Setup(&reg).ok());
  auto rq = reg.Register(AuctionWorkload::QueryStreams(),
                         AuctionWorkload::QueryPredicates());
  ASSERT_TRUE(rq.ok());
  Trace trace = AuctionWorkload::Generate(config);
  ASSERT_TRUE(FeedTrace(rq->executor.get(), trace).ok());

  // Every auction closed: state fully drained; results = one per bid.
  EXPECT_EQ(rq->executor->TotalLiveTuples(), 0u);
  EXPECT_EQ(rq->executor->num_results(), 200u * 5u);
  // High water stays in the neighborhood of the open window, far from
  // the 1200-element input.
  EXPECT_LE(rq->executor->tuple_high_water(), 8 * config.max_open);

  // Same trace, punctuations stripped: linear growth.
  AuctionConfig no_punct = config;
  no_punct.punctuate_items = false;
  no_punct.punctuate_close = false;
  auto rq2 = reg.Register(AuctionWorkload::QueryStreams(),
                          AuctionWorkload::QueryPredicates());
  ASSERT_TRUE(rq2.ok());
  ASSERT_TRUE(
      FeedTrace(rq2->executor.get(), AuctionWorkload::Generate(no_punct))
          .ok());
  EXPECT_EQ(rq2->executor->TotalLiveTuples(), 200u + 200u * 5u);
  EXPECT_EQ(rq2->executor->num_results(), 200u * 5u);
}

}  // namespace
}  // namespace punctsafe
