// Parameterized property sweeps: the theorem-equivalence and
// runtime-boundedness properties re-checked systematically across the
// instance-space axes (stream count, multi-attribute scheme rate,
// join-graph cyclicity, scheme sparsity) rather than one mixed
// random bag.

#include <gtest/gtest.h>

#include "core/naive_checker.h"
#include "core/safety_checker.h"
#include "core/transformed_punctuation_graph.h"
#include "exec/input_manager.h"
#include "exec/plan_executor.h"
#include "util/logging.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

struct SweepParam {
  size_t num_streams;
  size_t extra_predicates;
  double multi_attr_prob;
  double schemeless_prob;
  const char* label;
};

void PrintTo(const SweepParam& p, std::ostream* os) { *os << p.label; }

class SafetySweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  RandomQueryInstance MakeInstance(uint64_t seed) const {
    const SweepParam& p = GetParam();
    RandomQueryConfig config;
    config.num_streams = p.num_streams;
    config.attrs_per_stream = 2;
    config.extra_predicates = p.extra_predicates;
    config.multi_attr_prob = p.multi_attr_prob;
    config.schemeless_prob = p.schemeless_prob;
    config.second_scheme_prob = 0.3;
    config.seed = seed * 6151 + 97;
    auto inst = MakeRandomQuery(config);
    PUNCTSAFE_CHECK_OK(inst.status());
    return std::move(inst).ValueOrDie();
  }
};

// Theorem 5 under every parameter combination: the transformed graph
// (closure mode) equals the Definition 9/10 fixpoint.
TEST_P(SafetySweepTest, TransformedGraphMatchesFixpoint) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    RandomQueryInstance inst = MakeInstance(seed);
    GeneralizedPunctuationGraph gpg =
        GeneralizedPunctuationGraph::Build(inst.query, inst.schemes);
    TransformedPunctuationGraph tpg =
        TransformedPunctuationGraph::BuildFromGpg(gpg);
    EXPECT_EQ(tpg.CollapsedToSingleNode(), gpg.IsStronglyConnected())
        << GetParam().label << " seed=" << seed << " "
        << inst.query.ToString() << " " << inst.schemes.ToString();
  }
}

// Theorems 2/4 under every parameter combination: the one-graph
// verdict equals exhaustive plan enumeration (streams kept <= 4 so
// enumeration stays cheap).
TEST_P(SafetySweepTest, VerdictMatchesExhaustiveEnumeration) {
  if (GetParam().num_streams > 4) GTEST_SKIP() << "enumeration too large";
  for (uint64_t seed = 0; seed < 25; ++seed) {
    RandomQueryInstance inst = MakeInstance(seed);
    auto naive = NaiveSafetyCheck(inst.query, inst.schemes, 8);
    ASSERT_TRUE(naive.ok());
    bool theorem =
        TransformedPunctuationGraph::Build(inst.query, inst.schemes)
            .CollapsedToSingleNode();
    EXPECT_EQ(naive->safe, theorem)
        << GetParam().label << " seed=" << seed << " "
        << inst.query.ToString() << " " << inst.schemes.ToString();
  }
}

// The runtime dichotomy under every parameter combination: safe
// drains, unsafe retains.
TEST_P(SafetySweepTest, RuntimeBoundednessMatchesVerdict) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    RandomQueryInstance inst = MakeInstance(seed);
    SafetyChecker checker(inst.schemes);
    auto report = checker.CheckQuery(inst.query);
    ASSERT_TRUE(report.ok());

    auto exec = PlanExecutor::Create(
        inst.query, inst.schemes,
        PlanShape::SingleMJoin(inst.query.num_streams()), {});
    ASSERT_TRUE(exec.ok());
    CoveringTraceConfig tconfig;
    tconfig.num_generations = 8;
    tconfig.values_per_generation = 3;
    tconfig.tuples_per_generation = 12;
    tconfig.seed = seed;
    Trace trace = MakeCoveringTrace(inst.query, inst.schemes, tconfig);
    ASSERT_TRUE(FeedTrace(exec.ValueOrDie().get(), trace).ok());

    if (report->safe) {
      EXPECT_EQ((*exec)->TotalLiveTuples(), 0u)
          << GetParam().label << " seed=" << seed;
    } else {
      EXPECT_GT((*exec)->TotalLiveTuples(), 0u)
          << GetParam().label << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SafetySweepTest,
    ::testing::Values(
        SweepParam{2, 0, 0.0, 0.3, "binary_simple"},
        SweepParam{3, 0, 0.0, 0.3, "tree3_simple"},
        SweepParam{3, 2, 0.0, 0.3, "cyclic3_simple"},
        SweepParam{3, 1, 0.8, 0.2, "cyclic3_multiattr"},
        SweepParam{4, 0, 0.0, 0.4, "tree4_sparse"},
        SweepParam{4, 2, 0.5, 0.25, "cyclic4_mixed"},
        SweepParam{5, 1, 0.4, 0.3, "five_mixed"},
        SweepParam{6, 2, 0.6, 0.2, "six_dense_multiattr"},
        SweepParam{2, 0, 1.0, 0.0, "binary_all_multiattr"},
        SweepParam{4, 3, 0.0, 0.6, "cyclic4_mostly_schemeless"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace punctsafe
