// TraceRing invariants: capacity rounding, FIFO drain, wraparound
// reuse, drop-newest-when-full accounting, and — the reason the ring
// exists — a concurrent single-producer / single-consumer stress that
// the TSan CI configuration turns into a race proof.

#include "obs/trace_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace punctsafe {
namespace obs {
namespace {

TraceRecord Rec(uint64_t a) {
  TraceRecord r;
  r.t_ns = static_cast<int64_t>(a);
  r.kind = TraceKind::kTupleIn;
  r.a = a;
  return r;
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(0).capacity(), 2u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
}

TEST(TraceRingTest, FifoDrainAndCounters) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(Rec(i)));
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.pending(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);

  std::vector<TraceRecord> out;
  EXPECT_EQ(ring.Drain(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].a, i);
  EXPECT_EQ(ring.pending(), 0u);
}

TEST(TraceRingTest, FullRingDropsNewestAndCounts) {
  TraceRing ring(4);  // capacity 4
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(Rec(i)));
  EXPECT_FALSE(ring.TryPush(Rec(99)));
  EXPECT_FALSE(ring.TryPush(Rec(100)));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.recorded(), 4u);

  // The oldest records survive (drop-newest, never overwrite).
  std::vector<TraceRecord> out;
  ring.Drain(&out);
  ASSERT_EQ(out.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].a, i);
}

TEST(TraceRingTest, WraparoundReusesSlots) {
  TraceRing ring(4);
  std::vector<TraceRecord> out;
  // Cycle far past the capacity so head/tail wrap several times.
  for (uint64_t round = 0; round < 10; ++round) {
    for (uint64_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(ring.TryPush(Rec(round * 3 + i)));
    }
    out.clear();
    EXPECT_EQ(ring.Drain(&out), 3u);
    for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(out[i].a, round * 3 + i);
  }
  EXPECT_EQ(ring.recorded(), 30u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, DrainRespectsMax) {
  TraceRing ring(16);
  for (uint64_t i = 0; i < 10; ++i) ring.TryPush(Rec(i));
  std::vector<TraceRecord> out;
  EXPECT_EQ(ring.Drain(&out, 4), 4u);
  EXPECT_EQ(ring.pending(), 6u);
  EXPECT_EQ(ring.Drain(&out, 100), 6u);
  ASSERT_EQ(out.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].a, i);
}

// One writer thread, one drainer thread, small ring: the drained
// sequence must be a strictly increasing subsequence of what was
// pushed (drops allowed, reorder and duplication not), and the
// recorded/drained accounting must balance. Run under
// -DPUNCTSAFE_SANITIZE=thread this is the data-race proof for the
// acquire/release protocol.
TEST(TraceRingTest, ConcurrentWriterDrainer) {
  TraceRing ring(64);
  constexpr uint64_t kPushes = 200000;
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (uint64_t i = 0; i < kPushes; ++i) ring.TryPush(Rec(i));
    done.store(true, std::memory_order_release);
  });

  std::vector<TraceRecord> out;
  while (!done.load(std::memory_order_acquire)) {
    ring.Drain(&out);
  }
  producer.join();
  ring.Drain(&out);  // whatever remained after the producer finished

  EXPECT_EQ(out.size(), ring.recorded());
  EXPECT_EQ(ring.recorded() + ring.dropped(), kPushes);
  uint64_t prev = 0;
  bool first = true;
  for (const TraceRecord& r : out) {
    if (!first) {
      EXPECT_GT(r.a, prev);
    }
    prev = r.a;
    first = false;
  }
}

}  // namespace
}  // namespace obs
}  // namespace punctsafe
