#include "stream/punctuation.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace punctsafe {
namespace {

TEST(PatternTest, WildcardMatchesEverything) {
  Pattern p = Pattern::Wildcard();
  EXPECT_TRUE(p.is_wildcard());
  EXPECT_TRUE(p.Matches(Value(1)));
  EXPECT_TRUE(p.Matches(Value("x")));
  EXPECT_TRUE(p.Matches(Value::Null()));
  EXPECT_EQ(p.ToString(), "*");
}

TEST(PatternTest, ConstantMatchesEqualOnly) {
  Pattern p{Value(5)};
  EXPECT_FALSE(p.is_wildcard());
  EXPECT_TRUE(p.Matches(Value(5)));
  EXPECT_FALSE(p.Matches(Value(6)));
  EXPECT_FALSE(p.Matches(Value(5.0)));
  EXPECT_EQ(p.ToString(), "5");
}

TEST(PunctuationTest, PaperNotation) {
  // The paper's bid-stream punctuation (*, 1, *).
  Punctuation p = Punctuation::OfConstants(3, {{1, Value(1)}});
  EXPECT_EQ(p.ToString(), "(*, 1, *)");
  EXPECT_EQ(p.arity(), 3u);
}

TEST(PunctuationTest, MatchesRequiresAllConstants) {
  Punctuation p = Punctuation::OfConstants(3, {{0, Value(1)}, {2, Value(3)}});
  EXPECT_TRUE(p.Matches(Tuple({Value(1), Value(99), Value(3)})));
  EXPECT_FALSE(p.Matches(Tuple({Value(1), Value(99), Value(4)})));
  EXPECT_FALSE(p.Matches(Tuple({Value(2), Value(99), Value(3)})));
}

TEST(PunctuationTest, MatchesRejectsWrongArity) {
  Punctuation p = Punctuation::OfConstants(2, {{0, Value(1)}});
  EXPECT_FALSE(p.Matches(Tuple({Value(1)})));
}

TEST(PunctuationTest, AllWildcardMatchesAll) {
  Punctuation p = Punctuation::AllWildcard(2);
  EXPECT_TRUE(p.Matches(Tuple({Value(9), Value("z")})));
  EXPECT_TRUE(p.ConstrainedAttrs().empty());
}

TEST(PunctuationTest, ConstrainedAttrsAscending) {
  Punctuation p = Punctuation::OfConstants(4, {{3, Value(1)}, {1, Value(2)}});
  EXPECT_EQ(p.ConstrainedAttrs(), (std::vector<size_t>{1, 3}));
}

TEST(PunctuationTest, ExcludesSubspaceExactMatch) {
  // Punctuation (b1, *) excludes the subspace {attr0 = b1}.
  Punctuation p = Punctuation::OfConstants(2, {{0, Value(7)}});
  EXPECT_TRUE(p.ExcludesSubspace({0}, {Value(7)}));
  EXPECT_FALSE(p.ExcludesSubspace({0}, {Value(8)}));
}

TEST(PunctuationTest, WeakerPunctuationExcludesLargerSubspace) {
  // (7, *) excludes {attr0=7, attr1=anything}, so it also closes the
  // narrower subspace {attr0=7, attr1=3}.
  Punctuation p = Punctuation::OfConstants(2, {{0, Value(7)}});
  EXPECT_TRUE(p.ExcludesSubspace({0, 1}, {Value(7), Value(3)}));
}

TEST(PunctuationTest, StrongerPunctuationDoesNotExcludeWiderSubspace) {
  // (7, 3) excludes only tuples with both constants; the subspace
  // {attr0=7} contains (7, 4), which survives — the Section 4.2
  // pitfall that makes multi-attribute schemes weaker per instance.
  Punctuation p =
      Punctuation::OfConstants(2, {{0, Value(7)}, {1, Value(3)}});
  EXPECT_FALSE(p.ExcludesSubspace({0}, {Value(7)}));
  EXPECT_TRUE(p.ExcludesSubspace({0, 1}, {Value(7), Value(3)}));
}

TEST(PunctuationTest, ExcludesSubspaceAttrOrderIrrelevant) {
  Punctuation p =
      Punctuation::OfConstants(3, {{0, Value(1)}, {2, Value(2)}});
  EXPECT_TRUE(p.ExcludesSubspace({2, 0}, {Value(2), Value(1)}));
}

TEST(PunctuationTest, EqualityAndHash) {
  Punctuation a = Punctuation::OfConstants(2, {{0, Value(1)}});
  Punctuation b = Punctuation::OfConstants(2, {{0, Value(1)}});
  Punctuation c = Punctuation::OfConstants(2, {{1, Value(1)}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.Hash(), b.Hash());

  std::unordered_set<Punctuation, PunctuationHash> set{a, b, c};
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace punctsafe
