#include "core/naive_checker.h"

#include <gtest/gtest.h>

#include <set>

#include "core/transformed_punctuation_graph.h"
#include "test_util.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

TEST(NaiveCheckerTest, ShapeCountsMatchA000311) {
  EXPECT_EQ(CountAllShapes(0), 0u);
  EXPECT_EQ(CountAllShapes(1), 1u);
  EXPECT_EQ(CountAllShapes(2), 1u);
  EXPECT_EQ(CountAllShapes(3), 4u);
  EXPECT_EQ(CountAllShapes(4), 26u);
  EXPECT_EQ(CountAllShapes(5), 236u);
  EXPECT_EQ(CountAllShapes(6), 2752u);
  EXPECT_EQ(CountAllShapes(7), 39208u);
}

TEST(NaiveCheckerTest, EnumerationMatchesCount) {
  for (size_t n = 1; n <= 5; ++n) {
    std::vector<size_t> streams(n);
    for (size_t i = 0; i < n; ++i) streams[i] = i;
    EXPECT_EQ(EnumerateAllShapes(streams).size(), CountAllShapes(n))
        << "n=" << n;
  }
}

TEST(NaiveCheckerTest, EnumerationHasNoDuplicates) {
  auto shapes = EnumerateAllShapes({0, 1, 2, 3});
  for (size_t i = 0; i < shapes.size(); ++i) {
    EXPECT_EQ(shapes[i].Leaves(), (std::vector<size_t>{0, 1, 2, 3}));
    for (size_t j = i + 1; j < shapes.size(); ++j) {
      EXPECT_FALSE(shapes[i] == shapes[j]) << i << "," << j;
    }
  }
}

TEST(NaiveCheckerTest, Fig5FindsOnlyTheMJoinPlan) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto result = NaiveSafetyCheck(q, Fig5Schemes(catalog), 8,
                                 /*stop_at_first_safe=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->safe);
  EXPECT_EQ(result->shapes_checked, 4u);  // 3 binary trees + MJoin
  ASSERT_TRUE(result->safe_plan.has_value());
  EXPECT_EQ(*result->safe_plan, PlanShape::SingleMJoin(3));
}

TEST(NaiveCheckerTest, RefusesBeyondLimit) {
  StreamCatalog catalog;
  std::vector<std::string> streams;
  std::vector<JoinPredicateSpec> preds;
  for (int i = 0; i < 9; ++i) {
    std::string name = "T" + std::to_string(i);
    ASSERT_TRUE(catalog.Register(name, Schema::OfInts({"k"})).ok());
    if (i > 0) preds.push_back(Eq({streams.back(), "k"}, {name, "k"}));
    streams.push_back(name);
  }
  auto q = ContinuousJoinQuery::Create(catalog, streams, preds);
  ASSERT_TRUE(q.ok());
  auto result = NaiveSafetyCheck(*q, SchemeSet(), 8);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

// The paper's headline claim, checked exhaustively on random queries:
// a safe plan exists (naive enumeration) iff the (generalized)
// punctuation graph is strongly connected (Theorems 2/4 via TPG).
TEST(NaiveCheckerTest, Theorems2And4MatchExhaustiveEnumeration) {
  int safe_instances = 0;
  for (uint64_t seed = 0; seed < 120; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 3;  // n in {2,3,4}: cheap enumeration
    config.attrs_per_stream = 2;
    config.extra_predicates = seed % 2;
    config.multi_attr_prob = 0.4;
    config.schemeless_prob = 0.25;
    config.seed = seed * 101 + 17;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());

    auto naive = NaiveSafetyCheck(inst->query, inst->schemes, 8);
    ASSERT_TRUE(naive.ok());
    bool theorem = TransformedPunctuationGraph::Build(inst->query,
                                                      inst->schemes)
                       .CollapsedToSingleNode();
    EXPECT_EQ(naive->safe, theorem)
        << "seed=" << seed << " query=" << inst->query.ToString()
        << " schemes=" << inst->schemes.ToString();
    safe_instances += theorem ? 1 : 0;
  }
  EXPECT_GT(safe_instances, 10);
  EXPECT_LT(safe_instances, 110);
}

}  // namespace
}  // namespace punctsafe
