#include "core/local_graph.h"

#include <gtest/gtest.h>

#include "core/generalized_punctuation_graph.h"
#include "core/plan_safety.h"
#include "test_util.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

std::vector<LocalInput> RawInputs(const ContinuousJoinQuery& q,
                                  const SchemeSet& schemes) {
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < q.num_streams(); ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(q, schemes, s)});
  }
  return inputs;
}

// With one raw input per stream, the local graph IS the GPG: edge
// sets and reachability must coincide.
TEST(LocalGraphTest, RawInputsMatchGpg) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  for (const SchemeSet& schemes :
       {Fig5Schemes(catalog), Fig8Schemes(catalog)}) {
    auto edges = BuildLocalEdges(q, RawInputs(q, schemes));
    GeneralizedPunctuationGraph gpg =
        GeneralizedPunctuationGraph::Build(q, schemes);
    ASSERT_EQ(edges.size(), gpg.edges().size());
    for (size_t i = 0; i < edges.size(); ++i) {
      EXPECT_EQ(edges[i].source_inputs, gpg.edges()[i].sources);
      EXPECT_EQ(edges[i].target_input, gpg.edges()[i].target);
    }
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(LocalInputPurgeable(s, 3, edges), gpg.StatePurgeable(s));
    }
  }
}

// Merging {S1, S2} into one composite input internalizes the B=B
// predicate: only the C and A predicates cross the operator.
TEST(LocalGraphTest, CompositeInputInternalizesPredicates) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig8Schemes(catalog);
  std::vector<LocalInput> inputs;
  inputs.push_back({{0, 1}, {{0, {1}}, {1, {0}}, {1, {1}}}});
  inputs.push_back({{2}, RawAvailableSchemes(q, schemes, 2)});
  auto edges = BuildLocalEdges(q, inputs);

  // Schemes usable across this operator: S2(C) (faces S3) and
  // S3(C, A) (both attrs face the composite). S1(B)/S2(B) only face
  // inside the composite -> no edge.
  ASSERT_EQ(edges.size(), 2u);
  for (const LocalGpgEdge& e : edges) {
    if (e.target_input == 0) {
      EXPECT_EQ(e.source_inputs, (std::vector<size_t>{1}));
      EXPECT_EQ(e.scheme.origin_stream, 1u);  // S2's C scheme
    } else {
      EXPECT_EQ(e.source_inputs, (std::vector<size_t>{0}));
      EXPECT_EQ(e.scheme.origin_stream, 2u);  // S3's pair scheme
      EXPECT_EQ(e.bindings.size(), 2u);
    }
  }
  EXPECT_TRUE(LocalInputPurgeable(0, 2, edges));
  EXPECT_TRUE(LocalInputPurgeable(1, 2, edges));
}

TEST(LocalGraphTest, DeriveLocalPurgeStepsOrdering) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto edges = BuildLocalEdges(q, RawInputs(q, Fig5Schemes(catalog)));
  auto steps = DeriveLocalPurgeSteps(0, 3, edges);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 2u);
  // Dependency order: each step's sources already covered.
  std::vector<bool> covered(3, false);
  covered[0] = true;
  for (const LocalGpgEdge& e : *steps) {
    for (size_t s : e.source_inputs) EXPECT_TRUE(covered[s]);
    covered[e.target_input] = true;
  }
}

TEST(LocalGraphTest, DeriveLocalPurgeStepsFailsWhenUnreachable) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto edges = BuildLocalEdges(q, RawInputs(q, SchemeSet()));
  EXPECT_TRUE(edges.empty());
  EXPECT_TRUE(DeriveLocalPurgeSteps(0, 3, edges)
                  .status()
                  .IsFailedPrecondition());
}

// LocalReachableFrom agrees with the GPG fixpoint on random instances
// when inputs are raw streams.
TEST(LocalGraphTest, ReachabilityMatchesGpgOnRandomInstances) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 4;
    config.multi_attr_prob = 0.4;
    config.seed = seed * 211 + 13;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());
    auto edges =
        BuildLocalEdges(inst->query, RawInputs(inst->query, inst->schemes));
    GeneralizedPunctuationGraph gpg =
        GeneralizedPunctuationGraph::Build(inst->query, inst->schemes);
    for (size_t s = 0; s < inst->query.num_streams(); ++s) {
      EXPECT_EQ(LocalReachableFrom(s, inst->query.num_streams(), edges),
                gpg.ReachableFrom(s))
          << "seed=" << seed << " s=" << s;
    }
  }
}

}  // namespace
}  // namespace punctsafe
