#include "query/spec_parser.h"

#include <gtest/gtest.h>

#include "core/safety_checker.h"

namespace punctsafe {
namespace {

constexpr const char* kAuctionSpec = R"(
# online auction (paper Example 1)
stream item sellerid:int itemid:int name:string initialprice:int
stream bid  bidderid:int itemid:int increase:int
scheme item itemid
scheme bid  itemid
query  item bid
join   item.itemid = bid.itemid
)";

TEST(SpecParserTest, ParsesAuctionSpec) {
  auto spec = ParseSpec(kAuctionSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->catalog.size(), 2u);
  EXPECT_EQ(spec->schemes.size(), 2u);
  EXPECT_EQ(spec->query_streams,
            (std::vector<std::string>{"item", "bid"}));
  ASSERT_EQ(spec->predicates.size(), 1u);

  auto query = spec->MakeQuery();
  ASSERT_TRUE(query.ok());
  SafetyChecker checker(spec->schemes);
  auto report = checker.CheckQuery(*query);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe);
}

TEST(SpecParserTest, ParsesTypesAndMultiAttrSchemes) {
  auto spec = ParseSpec(
      "stream a k:int v:double s:string\n"
      "stream b k:int e:int\n"
      "scheme b k e\n"
      "query a b\n"
      "join a.k = b.k\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto schema = spec->catalog.Get("a");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->attribute(1).type, ValueType::kDouble);
  EXPECT_EQ((*schema)->attribute(2).type, ValueType::kString);
  ASSERT_EQ(spec->schemes.size(), 1u);
  EXPECT_EQ(spec->schemes.schemes()[0].NumPunctuatable(), 2u);
}

TEST(SpecParserTest, JoinTokenizationVariants) {
  for (const char* join_line :
       {"join a.k = b.k", "join a.k=b.k", "join a.k =b.k"}) {
    std::string text = std::string("stream a k:int\nstream b k:int\n") +
                       "query a b\n" + join_line + "\n";
    auto spec = ParseSpec(text);
    ASSERT_TRUE(spec.ok()) << join_line << ": " << spec.status().ToString();
    EXPECT_EQ(spec->predicates.size(), 1u);
  }
}

TEST(SpecParserTest, ErrorsCarryLineNumbers) {
  auto bad_type = ParseSpec("stream a k:float\nquery a a\njoin a.k=a.k\n");
  EXPECT_TRUE(bad_type.status().IsInvalidArgument());
  EXPECT_NE(bad_type.status().message().find("line 1"), std::string::npos);

  auto bad_keyword = ParseSpec("stream a k:int\nfrobnicate\n");
  EXPECT_NE(bad_keyword.status().message().find("line 2"),
            std::string::npos);
}

TEST(SpecParserTest, StructuralErrors) {
  EXPECT_TRUE(ParseSpec("").status().IsInvalidArgument());  // no query
  EXPECT_TRUE(ParseSpec("stream a k:int\nstream b k:int\nquery a b\n")
                  .status()
                  .IsInvalidArgument());  // no joins
  EXPECT_TRUE(ParseSpec("stream a k:int\nquery a\n")
                  .status()
                  .IsInvalidArgument());  // one-stream query
  // Unknown stream in scheme.
  EXPECT_TRUE(ParseSpec("stream a k:int\nscheme zzz k\n")
                  .status()
                  .IsNotFound());
  // Duplicate query line.
  EXPECT_TRUE(ParseSpec("stream a k:int\nstream b k:int\n"
                        "query a b\nquery a b\njoin a.k=b.k\n")
                  .status()
                  .IsInvalidArgument());
  // Malformed attr ref.
  EXPECT_TRUE(ParseSpec("stream a k:int\nstream b k:int\n"
                        "query a b\njoin ak = b.k\n")
                  .status()
                  .IsInvalidArgument());
}

TEST(SpecParserTest, CommentsAndBlankLinesIgnored) {
  auto spec = ParseSpec(
      "\n  # leading comment\n"
      "stream a k:int  # trailing comment\n"
      "stream b k:int\n\n"
      "query a b\n"
      "join a.k = b.k\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->catalog.size(), 2u);
}

TEST(SpecParserTest, SemicolonsSeparateLikeNewlines) {
  // The one-line transport form the server's REGISTER QUERY uses.
  auto spec = ParseSpec(
      "stream a k:int; stream b k:int; scheme a k; scheme b k; "
      "query a b; join a.k = b.k");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->catalog.size(), 2u);
  EXPECT_EQ(spec->schemes.size(), 2u);
  EXPECT_EQ(spec->predicates.size(), 1u);

  // Mixed separators; all segments of a physical line report its
  // number.
  auto bad = ParseSpec("stream a k:int; stream b k:int\nquery a b; frob\n");
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);

  // A comment covers the rest of the physical line, semicolons
  // included.
  auto commented = ParseSpec(
      "stream a k:int # ignored; also ignored\n"
      "stream b k:int; query a b; join a.k = b.k\n");
  ASSERT_TRUE(commented.ok()) << commented.status().ToString();
}

TEST(SpecParserTest, SeededCatalogSupportsStreamlessSpecs) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog.Register("a", Schema::OfInts({"k"})).ok());
  ASSERT_TRUE(catalog.Register("b", Schema::OfInts({"k"})).ok());

  auto spec =
      ParseSpec("scheme a k; query a b; join a.k = b.k", catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->catalog.size(), 2u);
  EXPECT_EQ(spec->schemes.size(), 1u);

  // Unknown streams still fail against the seeded catalog.
  EXPECT_TRUE(ParseSpec("query a zzz; join a.k = zzz.k", catalog)
                  .status()
                  .IsNotFound());
  // Re-declaring a seeded stream collides.
  EXPECT_TRUE(ParseSpec("stream a k:int; query a b; join a.k = b.k",
                        catalog)
                  .status()
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace punctsafe
