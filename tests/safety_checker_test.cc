#include "core/safety_checker.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

TEST(SafetyCheckerTest, Fig5SafeViaSimplePath) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SafetyChecker checker(Fig5Schemes(catalog));
  auto report = checker.CheckQuery(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe);
  EXPECT_TRUE(report->used_simple_path);
  EXPECT_EQ(report->per_stream.size(), 3u);
  for (const StreamPurgeability& v : report->per_stream) {
    EXPECT_TRUE(v.purgeable);
    ASSERT_TRUE(v.purge_plan.has_value());
    EXPECT_EQ(v.purge_plan->steps.size(), 2u);
  }
  EXPECT_NE(report->explanation.find("SAFE"), std::string::npos);
}

TEST(SafetyCheckerTest, Fig8SafeViaGeneralizedPath) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SafetyChecker checker(Fig8Schemes(catalog));
  auto report = checker.CheckQuery(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe);
  EXPECT_FALSE(report->used_simple_path);
  EXPECT_GE(report->tpg_rounds, 1u);
}

TEST(SafetyCheckerTest, UnsafeQueryNamesUnpurgeableStreams) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes;
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S1", {"B"})).ok());
  SafetyChecker checker(schemes);
  auto report = checker.CheckQuery(q);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->safe);
  EXPECT_NE(report->explanation.find("UNSAFE"), std::string::npos);
  // S2 can reach S1 but not S3; S1/S3 reach nothing useful.
  EXPECT_FALSE(report->per_stream[0].purgeable);
  EXPECT_FALSE(report->per_stream[1].purgeable);
  EXPECT_FALSE(report->per_stream[2].purgeable);
}

TEST(SafetyCheckerTest, IrrelevantSchemesOnOtherStreamsIgnored) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = ContinuousJoinQuery::Create(
                              catalog, {"S1", "S2"},
                              {Eq({"S1", "B"}, {"S2", "B"})})
                              .ValueOrDie();
  SchemeSet schemes = Fig5Schemes(catalog);  // includes S3 scheme
  SafetyChecker checker(schemes);
  auto report = checker.CheckQuery(q);
  ASSERT_TRUE(report.ok());
  // S1 scheme on B covers S2's waiters; S2's scheme is on C (not a
  // join attribute here) so S1's state can never purge.
  EXPECT_FALSE(report->safe);
  EXPECT_TRUE(report->per_stream[1].purgeable);
  EXPECT_FALSE(report->per_stream[0].purgeable);
}

TEST(SafetyCheckerTest, CheckStateByName) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SafetyChecker checker(Fig5Schemes(catalog));
  auto v = checker.CheckState(q, "S2");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->purgeable);
  EXPECT_EQ(v->stream, 1u);

  EXPECT_TRUE(checker.CheckState(q, "nope").status().IsNotFound());
}

TEST(SafetyCheckerTest, DerivePurgePlanByName) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SafetyChecker checker(Fig5Schemes(catalog));
  auto plan = checker.DerivePurgePlan(q, "S3");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root_stream, 2u);
  EXPECT_TRUE(checker.DerivePurgePlan(q, "nope").status().IsNotFound());
}

// The simple path and the generalized path must agree whenever all
// schemes are simple (the GPG subsumes the PG).
TEST(SafetyCheckerTest, SimpleAndGeneralizedPathsAgree) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  // Simple schemes: checker takes the PG path...
  SafetyChecker simple_checker(Fig5Schemes(catalog));
  auto simple = simple_checker.CheckQuery(q);
  ASSERT_TRUE(simple.ok());
  // ...and the TPG over the same schemes must return the same verdict.
  TransformedPunctuationGraph tpg =
      TransformedPunctuationGraph::Build(q, Fig5Schemes(catalog));
  EXPECT_EQ(simple->safe, tpg.CollapsedToSingleNode());
}

}  // namespace
}  // namespace punctsafe
