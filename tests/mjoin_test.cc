#include "exec/mjoin.h"

#include <gtest/gtest.h>

#include "core/plan_safety.h"
#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

std::vector<LocalInput> RawInputs(const ContinuousJoinQuery& q,
                                  const SchemeSet& schemes) {
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < q.num_streams(); ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(q, schemes, s)});
  }
  return inputs;
}

std::unique_ptr<MJoinOperator> MakeTriangleJoin(
    const ContinuousJoinQuery& q, const SchemeSet& schemes,
    MJoinConfig config = {}) {
  auto op = MJoinOperator::Create(q, RawInputs(q, schemes), config);
  PUNCTSAFE_CHECK(op.ok()) << op.status().ToString();
  return std::move(op).ValueOrDie();
}

TEST(MJoinTest, CreateValidation) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  // One input only.
  EXPECT_TRUE(
      MJoinOperator::Create(q, {{{0}, {}}}, {}).status().IsInvalidArgument());
  // Overlapping covers.
  EXPECT_TRUE(MJoinOperator::Create(q, {{{0, 1}, {}}, {{1, 2}, {}}}, {})
                  .status()
                  .IsInvalidArgument());
  // Unsorted cover.
  EXPECT_TRUE(MJoinOperator::Create(q, {{{1, 0}, {}}, {{2}, {}}}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(MJoinTest, ThreeWayResultsProduced) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto op = MakeTriangleJoin(q, Fig5Schemes(catalog));
  std::vector<Tuple> results;
  op->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results.push_back(e.tuple);
  });

  // S1(A,B)=(7,1), S2(B,C)=(1,2), S3(C,A)=(2,7): full triangle match.
  op->PushTuple(0, Tuple({Value(7), Value(1)}), 1);
  op->PushTuple(1, Tuple({Value(1), Value(2)}), 2);
  EXPECT_TRUE(results.empty());  // needs all three
  op->PushTuple(2, Tuple({Value(2), Value(7)}), 3);
  ASSERT_EQ(results.size(), 1u);
  // Output layout: S1 ++ S2 ++ S3.
  EXPECT_EQ(results[0],
            Tuple({Value(7), Value(1), Value(1), Value(2), Value(2),
                   Value(7)}));

  // A tuple matching on B but not on A produces nothing.
  op->PushTuple(2, Tuple({Value(2), Value(8)}), 4);
  EXPECT_EQ(results.size(), 1u);
  EXPECT_EQ(op->metrics().results_emitted, 1u);
}

// The Figure 5 chained purge at runtime: purging S1's tuple requires
// closing S3 on A = a1, then S2 on the joinable C values.
TEST(MJoinTest, Fig5ChainedPurgeTiming) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto op = MakeTriangleJoin(q, Fig5Schemes(catalog));
  for (size_t s = 0; s < 3; ++s) EXPECT_TRUE(op->InputPurgeable(s));

  op->PushTuple(2, Tuple({Value(30), Value(10)}), 1);  // S3 (C=30, A=10)
  op->PushTuple(0, Tuple({Value(10), Value(20)}), 2);  // S1 (A=10, B=20)
  EXPECT_EQ(op->TotalLiveTuples(), 2u);

  // Close S3 on A=10: not sufficient — the joinable S3 tuple (30,10)
  // still admits future S2 data with C=30.
  op->PushPunctuation(2, Punctuation::OfConstants(2, {{1, Value(10)}}), 3);
  EXPECT_EQ(op->state_metrics(0).live, 1u);

  // Close S2 on C=30: now S1's tuple AND the S3 tuple become
  // removable (S3's chain: close S2 on C=30, then S1 on the joinable
  // S2 B-values — vacuously none stored).
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(30)}}), 4);
  EXPECT_EQ(op->state_metrics(0).live, 0u);
  EXPECT_EQ(op->state_metrics(2).live, 0u);
  EXPECT_EQ(op->state_metrics(0).purged, 1u);
}

// Figure 8 worked example (Section 4.2): t = (a1, b1) from S1 purges
// after (b1, *) from S2 plus pair punctuations (c_j, a1) from S3 for
// every joinable c_j.
TEST(MJoinTest, Fig8GeneralizedPurge) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto op = MakeTriangleJoin(q, Fig8Schemes(catalog));

  const int64_t a1 = 1, b1 = 2, c1 = 3, c2 = 4;
  op->PushTuple(0, Tuple({Value(a1), Value(b1)}), 1);   // t
  op->PushTuple(1, Tuple({Value(b1), Value(c1)}), 2);   // joinable
  op->PushTuple(1, Tuple({Value(b1), Value(c2)}), 3);   // joinable
  EXPECT_EQ(op->state_metrics(0).live, 1u);

  // (b1, *) from S2 closes S2 for t...
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(b1)}}), 4);
  EXPECT_EQ(op->state_metrics(0).live, 1u);  // S3 still open

  // ...then the pair punctuations from S3 on (C, A).
  op->PushPunctuation(
      2, Punctuation::OfConstants(2, {{0, Value(c1)}, {1, Value(a1)}}), 5);
  EXPECT_EQ(op->state_metrics(0).live, 1u);  // c2 combo still open
  op->PushPunctuation(
      2, Punctuation::OfConstants(2, {{0, Value(c2)}, {1, Value(a1)}}), 6);
  EXPECT_EQ(op->state_metrics(0).live, 0u) << "t should now be purged";
}

TEST(MJoinTest, UnpurgeableInputKeepsGrowing) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes;  // no schemes at all
  auto op = MakeTriangleJoin(q, schemes);
  for (size_t s = 0; s < 3; ++s) EXPECT_FALSE(op->InputPurgeable(s));
  for (int i = 0; i < 10; ++i) {
    op->PushTuple(0, Tuple({Value(i), Value(i)}), i);
  }
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(1)}}), 99);
  EXPECT_EQ(op->TotalLiveTuples(), 10u);
}

TEST(MJoinTest, EagerDropOnArrival) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto op = MakeTriangleJoin(q, Fig5Schemes(catalog));
  // Close A=10 on S3 and (vacuously) everything else first.
  op->PushPunctuation(2, Punctuation::OfConstants(2, {{1, Value(10)}}), 1);
  // Arriving S1 tuple with A=10: joins nothing now and never will.
  op->PushTuple(0, Tuple({Value(10), Value(20)}), 2);
  EXPECT_EQ(op->state_metrics(0).live, 0u);
  EXPECT_EQ(op->state_metrics(0).dropped_on_arrival, 1u);
}

TEST(MJoinTest, ExcludedArrivalOnOwnStreamDropped) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto op = MakeTriangleJoin(q, Fig5Schemes(catalog));
  std::vector<Tuple> results;
  op->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results.push_back(e.tuple);
  });
  // S2 promises no more B=1 tuples, then violates it.
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(1)}}), 1);
  op->PushTuple(1, Tuple({Value(1), Value(2)}), 2);
  EXPECT_EQ(op->state_metrics(1).live, 0u);
  EXPECT_EQ(op->state_metrics(1).dropped_on_arrival, 1u);
  EXPECT_TRUE(results.empty());
}

TEST(MJoinTest, LazyPolicyBatchesSweeps) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  MJoinConfig config;
  config.purge_policy = PurgePolicy::kLazy;
  config.lazy_batch = 3;
  auto op = MakeTriangleJoin(q, Fig5Schemes(catalog), config);

  op->PushTuple(0, Tuple({Value(10), Value(20)}), 1);
  // These two punctuations fully close the S1 tuple, but the lazy
  // batch has not filled yet.
  op->PushPunctuation(2, Punctuation::OfConstants(2, {{1, Value(10)}}), 2);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(99)}}), 3);
  EXPECT_EQ(op->state_metrics(0).live, 1u);
  EXPECT_EQ(op->metrics().purge_sweeps, 0u);
  // Third punctuation triggers the sweep.
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(98)}}), 4);
  EXPECT_EQ(op->metrics().purge_sweeps, 1u);
  EXPECT_EQ(op->state_metrics(0).live, 0u);
}

TEST(MJoinTest, NonePolicyNeverPurges) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  MJoinConfig config;
  config.purge_policy = PurgePolicy::kNone;
  auto op = MakeTriangleJoin(q, Fig5Schemes(catalog), config);
  op->PushTuple(0, Tuple({Value(10), Value(20)}), 1);
  op->PushPunctuation(2, Punctuation::OfConstants(2, {{1, Value(10)}}), 2);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(30)}}), 3);
  EXPECT_EQ(op->TotalLiveTuples(), 1u);
  // Manual sweep still works.
  op->Sweep(4);
  EXPECT_EQ(op->TotalLiveTuples(), 0u);
}

TEST(MJoinTest, PunctuationLifespanReopensState) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  MJoinConfig config;
  config.punctuation_lifespan = 10;
  auto op = MakeTriangleJoin(q, Fig5Schemes(catalog), config);
  op->PushPunctuation(2, Punctuation::OfConstants(2, {{1, Value(10)}}), 0);
  // Within the lifespan the arriving tuple is dropped on arrival...
  op->PushTuple(0, Tuple({Value(10), Value(1)}), 5);
  EXPECT_EQ(op->state_metrics(0).live, 0u);
  // ...after expiry the same values are admitted again (recycled ids).
  op->PushTuple(0, Tuple({Value(10), Value(2)}), 50);
  EXPECT_EQ(op->state_metrics(0).live, 1u);
}

TEST(MJoinTest, MetricsAccounting) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto op = MakeTriangleJoin(q, Fig5Schemes(catalog));
  op->PushTuple(0, Tuple({Value(1), Value(2)}), 1);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(9)}}), 2);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{1, Value(9)}}), 3);
  const OperatorMetrics& m = op->metrics();
  EXPECT_EQ(m.punctuations_received, 2u);
  EXPECT_EQ(m.punctuations_stored, 1u);  // duplicate not re-stored
  EXPECT_GE(m.purge_sweeps, 2u);         // eager: sweep per punctuation
  EXPECT_GT(m.removability_checks, 0u);
  EXPECT_EQ(op->TotalLivePunctuations(), 1u);
}

// Composite input: a 2-input MJoin where the first input covers
// {S1, S2}: offsets must rebase correctly.
TEST(MJoinTest, CompositeInputOffsets) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  std::vector<LocalInput> inputs;
  inputs.push_back({{0, 1},
                    {{0, {1}}, {1, {1}}}});  // S1 on B, S2 on C... see below
  inputs.back().schemes = {{0, {1}}, {1, {1}}};  // S1.B and S2.C
  inputs.push_back({{2}, RawAvailableSchemes(q, schemes, 2)});
  auto op_or = MJoinOperator::Create(q, inputs, {});
  ASSERT_TRUE(op_or.ok()) << op_or.status().ToString();
  auto op = std::move(op_or).ValueOrDie();
  EXPECT_EQ(op->output_width(), 6u);

  std::vector<Tuple> results;
  op->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results.push_back(e.tuple);
  });
  // Composite (S1 ++ S2) = (A,B,B,C) = (7,1,1,2); S3 = (2,7).
  op->PushTuple(0, Tuple({Value(7), Value(1), Value(1), Value(2)}), 1);
  op->PushTuple(1, Tuple({Value(2), Value(7)}), 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], Tuple({Value(7), Value(1), Value(1), Value(2),
                               Value(2), Value(7)}));
}

}  // namespace
}  // namespace punctsafe
