#include "exec/symmetric_hash_join.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::SchemeOn;

struct AuctionFixture {
  StreamCatalog catalog;
  ContinuousJoinQuery query;
  SchemeSet schemes;

  AuctionFixture() : query(Make(&catalog)) {
    PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "item", {"itemid"})));
    PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "bid", {"itemid"})));
  }

  static ContinuousJoinQuery Make(StreamCatalog* catalog) {
    PUNCTSAFE_CHECK_OK(
        catalog->Register("item", Schema::OfInts({"sellerid", "itemid"})));
    PUNCTSAFE_CHECK_OK(
        catalog->Register("bid", Schema::OfInts({"itemid", "increase"})));
    auto q = ContinuousJoinQuery::Create(
        *catalog, {"item", "bid"},
        {Eq({"item", "itemid"}, {"bid", "itemid"})});
    PUNCTSAFE_CHECK(q.ok());
    return std::move(q).ValueOrDie();
  }

  std::unique_ptr<SymmetricHashJoinOperator> MakeOp(
      SymmetricHashJoinConfig config = {}) const {
    auto op = SymmetricHashJoinOperator::Create(query, schemes, config);
    PUNCTSAFE_CHECK(op.ok()) << op.status().ToString();
    return std::move(op).ValueOrDie();
  }
};

TEST(SymmetricHashJoinTest, RejectsNonBinaryQuery) {
  StreamCatalog catalog = testing_util::PaperCatalog();
  ContinuousJoinQuery q = testing_util::TriangleQuery(catalog);
  EXPECT_TRUE(SymmetricHashJoinOperator::Create(q, SchemeSet())
                  .status()
                  .IsInvalidArgument());
}

TEST(SymmetricHashJoinTest, SymmetricResultProduction) {
  AuctionFixture fx;
  auto op = fx.MakeOp();
  std::vector<Tuple> results;
  op->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results.push_back(e.tuple);
  });

  op->PushTuple(1, Tuple({Value(1), Value(5)}), 1);  // bid before item
  EXPECT_TRUE(results.empty());
  op->PushTuple(0, Tuple({Value(42), Value(1)}), 2);  // item 1
  ASSERT_EQ(results.size(), 1u);
  // Output layout: item ++ bid regardless of arrival order.
  EXPECT_EQ(results[0], Tuple({Value(42), Value(1), Value(1), Value(5)}));

  op->PushTuple(1, Tuple({Value(1), Value(7)}), 3);  // another bid
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[1], Tuple({Value(42), Value(1), Value(1), Value(7)}));
}

// The paper's Example 1 purge behavior: the auction-close punctuation
// on the bid stream purges the stored item tuple; the unique-item
// punctuation on the item stream purges the stored bids.
TEST(SymmetricHashJoinTest, Example1PurgeBothDirections) {
  AuctionFixture fx;
  auto op = fx.MakeOp();
  EXPECT_TRUE(op->InputPurgeable(0));
  EXPECT_TRUE(op->InputPurgeable(1));

  op->PushTuple(0, Tuple({Value(42), Value(1)}), 1);  // item 1
  op->PushTuple(1, Tuple({Value(1), Value(5)}), 2);   // bid on 1
  op->PushTuple(1, Tuple({Value(2), Value(9)}), 3);   // bid on 2 (early)
  EXPECT_EQ(op->TotalLiveTuples(), 3u);

  // Auction 1 closes: bid-stream punctuation (1, *).
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(1)}}), 4);
  EXPECT_EQ(op->state_metrics(0).live, 0u);  // item purged
  EXPECT_EQ(op->state_metrics(1).live, 2u);  // bids unaffected

  // itemid 1 unique: item-stream punctuation (*, 1) purges bid(1, 5).
  op->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(1)}}), 5);
  EXPECT_EQ(op->state_metrics(1).live, 1u);
  // bid(2, 9) waits for item 2.
  op->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(2)}}), 6);
  EXPECT_EQ(op->state_metrics(1).live, 0u);

  // The operator-level rollup sums both inputs.
  StateMetricsSnapshot agg = op->AggregateStateSnapshot();
  EXPECT_EQ(agg.inserted, 3u);
  EXPECT_EQ(agg.purged, 3u);
  EXPECT_EQ(agg.live, 0u);
}

TEST(SymmetricHashJoinTest, WrongSchemeMeansUnpurgeable) {
  AuctionFixture fx;
  SchemeSet wrong;
  ASSERT_TRUE(wrong.Add(SchemeOn(fx.catalog, "bid", {"increase"})).ok());
  auto op_or = SymmetricHashJoinOperator::Create(fx.query, wrong);
  ASSERT_TRUE(op_or.ok());
  auto op = std::move(op_or).ValueOrDie();
  EXPECT_FALSE(op->InputPurgeable(0));
  EXPECT_FALSE(op->InputPurgeable(1));
  op->PushTuple(0, Tuple({Value(42), Value(1)}), 1);
  op->PushPunctuation(
      1, Punctuation::OfConstants(2, {{1, Value(5)}}), 2);
  EXPECT_EQ(op->TotalLiveTuples(), 1u);
}

TEST(SymmetricHashJoinTest, EagerDropOnArrival) {
  AuctionFixture fx;
  auto op = fx.MakeOp();
  // Auction 3 already closed.
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(3)}}), 1);
  // Late item 3 arrival still produces (no stored bids) and is never
  // stored.
  op->PushTuple(0, Tuple({Value(9), Value(3)}), 2);
  EXPECT_EQ(op->state_metrics(0).live, 0u);
  EXPECT_EQ(op->state_metrics(0).dropped_on_arrival, 1u);
}

TEST(SymmetricHashJoinTest, ContractViolatingTupleDropped) {
  AuctionFixture fx;
  auto op = fx.MakeOp();
  std::vector<Tuple> results;
  op->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results.push_back(e.tuple);
  });
  op->PushTuple(0, Tuple({Value(9), Value(3)}), 1);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(3)}}), 2);
  // The punctuation promised no more bids on 3; this one is ignored.
  op->PushTuple(1, Tuple({Value(3), Value(1)}), 3);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(op->state_metrics(1).dropped_on_arrival, 1u);
}

TEST(SymmetricHashJoinTest, LazyBatching) {
  AuctionFixture fx;
  SymmetricHashJoinConfig config;
  config.purge_policy = PurgePolicy::kLazy;
  config.lazy_batch = 2;
  auto op = fx.MakeOp(config);
  op->PushTuple(0, Tuple({Value(9), Value(3)}), 1);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(3)}}), 2);
  EXPECT_EQ(op->TotalLiveTuples(), 1u);  // not swept yet
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(4)}}), 3);
  EXPECT_EQ(op->TotalLiveTuples(), 0u);  // batch filled, sweep ran
}

TEST(SymmetricHashJoinTest, ConjunctivePredicatesAllMustMatch) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog.Register("L", Schema::OfInts({"A", "B"})).ok());
  ASSERT_TRUE(catalog.Register("R", Schema::OfInts({"A", "B"})).ok());
  auto q = ContinuousJoinQuery::Create(
      catalog, {"L", "R"},
      {Eq({"L", "A"}, {"R", "A"}), Eq({"L", "B"}, {"R", "B"})});
  ASSERT_TRUE(q.ok());
  SchemeSet schemes;
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "R", {"A"})).ok());
  auto op_or = SymmetricHashJoinOperator::Create(*q, schemes);
  ASSERT_TRUE(op_or.ok());
  auto op = std::move(op_or).ValueOrDie();

  std::vector<Tuple> results;
  op->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results.push_back(e.tuple);
  });
  op->PushTuple(0, Tuple({Value(1), Value(2)}), 1);
  op->PushTuple(1, Tuple({Value(1), Value(3)}), 2);  // A matches, B not
  EXPECT_TRUE(results.empty());
  op->PushTuple(1, Tuple({Value(1), Value(2)}), 3);  // both match
  EXPECT_EQ(results.size(), 1u);

  // Section 3.1: punctuation on ONE conjunct attribute purges.
  EXPECT_TRUE(op->InputPurgeable(0));
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(1)}}), 4);
  EXPECT_EQ(op->state_metrics(0).live, 0u);
}

TEST(SymmetricHashJoinTest, PunctuationLifespan) {
  AuctionFixture fx;
  SymmetricHashJoinConfig config;
  config.punctuation_lifespan = 10;
  auto op = fx.MakeOp(config);
  op->PushPunctuation(1, Punctuation::OfConstants(2, {{0, Value(1)}}), 0);
  op->PushTuple(0, Tuple({Value(9), Value(1)}), 5);
  EXPECT_EQ(op->state_metrics(0).live, 0u);  // dropped within lifespan
  op->PushTuple(0, Tuple({Value(9), Value(1)}), 20);
  EXPECT_EQ(op->state_metrics(0).live, 1u);  // admitted after expiry
}

}  // namespace
}  // namespace punctsafe
