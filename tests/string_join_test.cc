// End-to-end coverage for non-integer join attributes: string keys
// flow through predicates, indexes, punctuations and purging exactly
// like integers (the paper's model is type-agnostic; the
// implementation must be too).

#include <gtest/gtest.h>

#include "exec/query_register.h"
#include "util/logging.h"

namespace punctsafe {
namespace {

class StringJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PUNCTSAFE_CHECK_OK(reg_.RegisterStream(
        "users", Schema({{"name", ValueType::kString},
                         {"age", ValueType::kInt64}})));
    PUNCTSAFE_CHECK_OK(reg_.RegisterStream(
        "logins", Schema({{"name", ValueType::kString},
                          {"ip", ValueType::kString}})));
    PUNCTSAFE_CHECK_OK(reg_.RegisterScheme("users", {"name"}));
    PUNCTSAFE_CHECK_OK(reg_.RegisterScheme("logins", {"name"}));
  }

  QueryRegister reg_;
};

TEST_F(StringJoinTest, SafeAndJoinsOnStrings) {
  ExecutorConfig config;
  config.keep_results = true;
  auto rq = reg_.Register({"users", "logins"},
                          {Eq({"users", "name"}, {"logins", "name"})},
                          config);
  ASSERT_TRUE(rq.ok()) << rq.status().ToString();
  EXPECT_TRUE(rq->safety.safe);

  rq->executor->PushTuple(0, Tuple({Value("ada"), Value(36)}), 1);
  rq->executor->PushTuple(1, Tuple({Value("ada"), Value("10.0.0.1")}), 2);
  rq->executor->PushTuple(1, Tuple({Value("bob"), Value("10.0.0.2")}), 3);
  ASSERT_EQ(rq->executor->num_results(), 1u);
  EXPECT_EQ(rq->executor->kept_results()[0],
            Tuple({Value("ada"), Value(36), Value("ada"),
                   Value("10.0.0.1")}));
}

TEST_F(StringJoinTest, StringPunctuationsPurge) {
  auto rq = reg_.Register({"users", "logins"},
                          {Eq({"users", "name"}, {"logins", "name"})});
  ASSERT_TRUE(rq.ok());
  rq->executor->PushTuple(0, Tuple({Value("ada"), Value(36)}), 1);
  rq->executor->PushTuple(1, Tuple({Value("bob"), Value("10.0.0.2")}), 2);
  EXPECT_EQ(rq->executor->TotalLiveTuples(), 2u);

  // "ada" will never log in again: purges the stored user record.
  rq->executor->PushPunctuation(
      1, Punctuation::OfConstants(2, {{0, Value("ada")}}), 3);
  EXPECT_EQ(rq->executor->TotalLiveTuples(), 1u);
  // No more accounts named "bob": purges the waiting login.
  rq->executor->PushPunctuation(
      0, Punctuation::OfConstants(2, {{0, Value("bob")}}), 4);
  EXPECT_EQ(rq->executor->TotalLiveTuples(), 0u);
}

TEST_F(StringJoinTest, CaseSensitivity) {
  auto rq = reg_.Register({"users", "logins"},
                          {Eq({"users", "name"}, {"logins", "name"})});
  ASSERT_TRUE(rq.ok());
  rq->executor->PushTuple(0, Tuple({Value("Ada"), Value(36)}), 1);
  rq->executor->PushTuple(1, Tuple({Value("ada"), Value("10.0.0.1")}), 2);
  EXPECT_EQ(rq->executor->num_results(), 0u);  // "Ada" != "ada"
  // The punctuation for "ada" does not touch "Ada".
  rq->executor->PushPunctuation(
      1, Punctuation::OfConstants(2, {{0, Value("ada")}}), 3);
  EXPECT_EQ(rq->executor->operators()[0]->state_metrics(0).live, 1u);
}

}  // namespace
}  // namespace punctsafe
