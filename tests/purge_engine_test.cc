#include "exec/purge_engine.h"

#include <gtest/gtest.h>

#include "exec/input_manager.h"
#include "exec/plan_executor.h"
#include "test_util.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

TEST(PurgeEngineTest, StaticVerdictsMatchTheorem3) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto engine = PurgeEngine::Create(q, Fig5Schemes(catalog));
  ASSERT_TRUE(engine.ok());
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE((*engine)->StreamPurgeable(s));
  }
  SchemeSet partial;
  ASSERT_TRUE(partial.Add(SchemeOn(catalog, "S2", {"B"})).ok());
  auto engine2 = PurgeEngine::Create(q, partial);
  ASSERT_TRUE(engine2.ok());
  EXPECT_FALSE((*engine2)->StreamPurgeable(0));
}

TEST(PurgeEngineTest, ChainedReleaseMatchesOperatorBehavior) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto engine = PurgeEngine::Create(q, Fig5Schemes(catalog));
  ASSERT_TRUE(engine.ok());

  (*engine)->AddTuple(2, Tuple({Value(30), Value(10)}), 1);  // S3 (C,A)
  (*engine)->AddTuple(0, Tuple({Value(10), Value(20)}), 2);  // S1 (A,B)
  EXPECT_TRUE((*engine)->Sweep(3).empty());

  (*engine)->AddPunctuation(2, Punctuation::OfConstants(2, {{1, Value(10)}}),
                            4);
  EXPECT_TRUE((*engine)->Sweep(5).empty());  // S2 hop still open

  (*engine)->AddPunctuation(1, Punctuation::OfConstants(2, {{1, Value(30)}}),
                            6);
  auto released = (*engine)->Sweep(7);
  EXPECT_EQ(released.size(), 2u);
  EXPECT_EQ((*engine)->TotalLiveTuples(), 0u);
}

// The paper's Section 2.4 point: under the engine model, purgeability
// depends only on the query. The Figure 7 situation — where the
// binary plan's lower operator can never release S1 locally — does
// not trap the engine: the same trace leaves the engine's S1 state
// empty while the binary-plan executor's lower join retains it.
TEST(PurgeEngineTest, PlanIndependenceOnFig7Trace) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);

  auto engine = PurgeEngine::Create(q, schemes);
  ASSERT_TRUE(engine.ok());
  auto binary = PlanExecutor::Create(q, schemes,
                                     PlanShape::LeftDeepBinary({0, 1, 2}));
  ASSERT_TRUE(binary.ok());

  for (int i = 0; i < 10; ++i) {
    Tuple s1({Value(i), Value(i)});
    (*engine)->AddTuple(0, s1, i);
    (*binary)->PushTuple(0, s1, i);
    Punctuation close_a = Punctuation::OfConstants(2, {{1, Value(i)}});
    (*engine)->AddPunctuation(2, close_a, i);  // S3 closes A=i
    (*binary)->PushPunctuation(2, close_a, i);
    Punctuation close_c = Punctuation::OfConstants(2, {{1, Value(i)}});
    (*engine)->AddPunctuation(1, close_c, i);  // S2 closes C=i
    (*binary)->PushPunctuation(1, close_c, i);
  }
  (*engine)->Sweep(100);
  EXPECT_EQ((*engine)->live_count(0), 0u)
      << "the engine releases S1 from whole-query knowledge";
  EXPECT_EQ((*binary)->TotalLiveTuples(), 10u)
      << "the operator-local binary plan cannot";
}

// Differential: engine releases exactly what the single-MJoin
// operator purges, across random safe instances.
TEST(PurgeEngineTest, MatchesSingleMJoinOnRandomInstances) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 3;
    config.multi_attr_prob = 0.3;
    config.schemeless_prob = 0.2;
    config.seed = seed * 401 + 19;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());

    auto engine = PurgeEngine::Create(inst->query, inst->schemes);
    ASSERT_TRUE(engine.ok());
    ExecutorConfig exec_config;
    exec_config.mjoin.drop_excluded_arrivals = false;
    auto exec = PlanExecutor::Create(
        inst->query, inst->schemes,
        PlanShape::SingleMJoin(inst->query.num_streams()), exec_config);
    ASSERT_TRUE(exec.ok());

    CoveringTraceConfig tconfig;
    tconfig.num_generations = 6;
    tconfig.values_per_generation = 3;
    tconfig.tuples_per_generation = 12;
    tconfig.seed = seed;
    Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);
    for (const TraceEvent& e : trace) {
      size_t s = *inst->query.StreamIndex(e.stream);
      if (e.element.is_tuple()) {
        (*engine)->AddTuple(s, e.element.tuple, e.element.timestamp);
        (*exec)->PushTuple(s, e.element.tuple, e.element.timestamp);
      } else {
        (*engine)->AddPunctuation(s, e.element.punctuation,
                                  e.element.timestamp);
        (*exec)->PushPunctuation(s, e.element.punctuation,
                                 e.element.timestamp);
      }
      (*engine)->Sweep(e.element.timestamp);
    }
    // Same per-stream residual state.
    const auto& op = (*exec)->operators().front();
    for (size_t s = 0; s < inst->query.num_streams(); ++s) {
      EXPECT_EQ((*engine)->live_count(s), op->state_metrics(s).live)
          << "seed=" << seed << " stream=" << s;
    }
  }
}

}  // namespace
}  // namespace punctsafe
