#include "graph/scc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace punctsafe {
namespace {

TEST(SccTest, SingletonComponents) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  SccResult r = FindSccs(g);
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_FALSE(r.HasNontrivialComponent());
  // All distinct.
  std::set<size_t> ids(r.component_of.begin(), r.component_of.end());
  EXPECT_EQ(ids.size(), 3u);
}

TEST(SccTest, FullCycleOneComponent) {
  Digraph g(4);
  for (size_t i = 0; i < 4; ++i) g.AddEdge(i, (i + 1) % 4);
  SccResult r = FindSccs(g);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_TRUE(r.HasNontrivialComponent());
}

TEST(SccTest, MixedComponents) {
  // 0 <-> 1 form a component; 2 hangs off it; 3 isolated.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  SccResult r = FindSccs(g);
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_EQ(r.component_of[0], r.component_of[1]);
  EXPECT_NE(r.component_of[0], r.component_of[2]);
  EXPECT_NE(r.component_of[2], r.component_of[3]);
  auto members = r.Members();
  size_t big = r.component_of[0];
  EXPECT_EQ(members[big].size(), 2u);
}

TEST(SccTest, ReverseTopologicalNumbering) {
  // Tarjan numbers a component before its predecessors: with edge
  // A -> B (separate components), B's id < A's id.
  Digraph g(2);
  g.AddEdge(0, 1);
  SccResult r = FindSccs(g);
  EXPECT_LT(r.component_of[1], r.component_of[0]);
}

TEST(SccTest, CondensationIsDag) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // {0,1}
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);  // {2,3}
  g.AddEdge(3, 4);
  SccResult r = FindSccs(g);
  EXPECT_EQ(r.num_components, 3u);
  Digraph dag = Condense(g, r);
  EXPECT_EQ(dag.num_nodes(), 3u);
  // A DAG's SCCs are all singletons.
  EXPECT_FALSE(FindSccs(dag).HasNontrivialComponent());
  // Edges across components survive, intra-component edges do not.
  EXPECT_EQ(dag.num_edges(), 2u);
}

TEST(SccTest, EmptyGraph) {
  SccResult r = FindSccs(Digraph(0));
  EXPECT_EQ(r.num_components, 0u);
  EXPECT_FALSE(r.HasNontrivialComponent());
}

TEST(SccTest, DeepChainDoesNotOverflow) {
  // Iterative Tarjan must handle long chains (recursive versions
  // blow the stack around tens of thousands of frames).
  const size_t n = 200000;
  Digraph g(n);
  for (size_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  SccResult r = FindSccs(g);
  EXPECT_EQ(r.num_components, n);
}

// Property: strong connectivity per Digraph (double BFS) agrees with
// "exactly one SCC" per Tarjan on random graphs.
TEST(SccTest, AgreesWithDoubleBfsOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = 2 + rng.NextBelow(6);
    Digraph g(n);
    size_t edges = rng.NextBelow(n * n);
    for (size_t e = 0; e < edges; ++e) {
      g.AddEdge(rng.NextBelow(n), rng.NextBelow(n));
    }
    SccResult r = FindSccs(g);
    EXPECT_EQ(g.IsStronglyConnected(), r.num_components == 1)
        << "n=" << n << " graph=" << g.ToString();
  }
}

}  // namespace
}  // namespace punctsafe
