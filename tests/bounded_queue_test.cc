// BoundedQueue contract tests, written to be meaningful under TSan
// (tools/ci.sh runs this suite with -DPUNCTSAFE_SANITIZE=thread):
// per-producer FIFO under multi-producer contention, capacity-1
// backpressure, and shutdown while producers/consumers are blocked.

#include "exec/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace punctsafe {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.TryPop(), 3);
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
}

// Capacity-1 queue: every push must wait for the matching pop, so the
// queue observably never holds more than one element and the full
// sequence arrives in order.
TEST(BoundedQueueTest, CapacityOneBackpressure) {
  BoundedQueue<int> q(1);
  constexpr int kCount = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) ASSERT_TRUE(q.Push(i));
  });
  for (int i = 0; i < kCount; ++i) {
    ASSERT_LE(q.size(), 1u);
    std::optional<int> v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  producer.join();
  EXPECT_EQ(q.size(), 0u);
}

// Multi-producer / single-consumer (the executor's edge shape):
// producers interleave arbitrarily but each producer's own sequence
// must arrive in order and nothing may be lost or duplicated.
TEST(BoundedQueueTest, MultiProducerPerProducerFifo) {
  constexpr size_t kProducers = 4;
  constexpr int kPerProducer = 3000;
  struct Item {
    size_t producer;
    int seq;
  };
  BoundedQueue<Item> q(16);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(Item{p, i}));
      }
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  size_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::optional<Item> item = q.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->seq, next_seq[item->producer])
        << "producer " << item->producer << " reordered";
    ++next_seq[item->producer];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

// Multi-producer + multi-consumer smoke: totals must balance.
TEST(BoundedQueueTest, MultiProducerMultiConsumerConservesItems) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 4000;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (true) {
        std::optional<int> v = q.Pop();
        if (!v.has_value()) return;  // closed and drained
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  threads[0].join();
  threads[1].join();
  q.Close();
  threads[2].join();
  threads[3].join();
  EXPECT_EQ(popped.load(), 2 * kPerProducer);
  long long n = 2LL * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BoundedQueueTest, PopAllDrainsWholeBurstInOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  std::optional<std::deque<int>> batch = q.PopAll();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(*batch, (std::deque<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 0u);
  // Drained + closed => end-of-stream.
  q.Close();
  EXPECT_EQ(q.PopAll(), std::nullopt);
}

TEST(BoundedQueueTest, PopAllBlocksUntilDataOrClose) {
  BoundedQueue<int> q(4);
  std::atomic<bool> got_batch{false};
  std::thread consumer([&] {
    std::optional<std::deque<int>> batch = q.PopAll();
    ASSERT_TRUE(batch.has_value());
    EXPECT_FALSE(batch->empty());
    got_batch = true;
    // Next PopAll sees end-of-stream after Close.
    EXPECT_EQ(q.PopAll(), std::nullopt);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got_batch.load());
  ASSERT_TRUE(q.Push(42));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_TRUE(got_batch.load());
}

TEST(BoundedQueueTest, PopAllReleasesBlockedProducers) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(3));  // blocks until PopAll frees capacity
    ASSERT_TRUE(q.Push(4));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::optional<std::deque<int>> first = q.PopAll();
  ASSERT_TRUE(first.has_value());
  producer.join();
  std::deque<int> rest = q.TryPopAll();
  std::deque<int> all = *first;
  all.insert(all.end(), rest.begin(), rest.end());
  EXPECT_EQ(all, (std::deque<int>{1, 2, 3, 4}));
}

TEST(BoundedQueueTest, TryPopAllNonBlocking) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPopAll().empty());
  ASSERT_TRUE(q.Push(7));
  ASSERT_TRUE(q.Push(8));
  EXPECT_EQ(q.TryPopAll(), (std::deque<int>{7, 8}));
  EXPECT_TRUE(q.TryPopAll().empty());
}

TEST(BoundedQueueTest, PushAllSpansCapacityWindows) {
  // 10 items through a capacity-3 queue: PushAll must block in chunks
  // while the consumer drains, and deliver everything in order.
  BoundedQueue<int> q(3);
  std::deque<int> values;
  for (int i = 0; i < 10; ++i) values.push_back(i);
  std::thread producer([&] { ASSERT_TRUE(q.PushAll(std::move(values))); });
  std::vector<int> received;
  while (received.size() < 10) {
    std::optional<int> v = q.Pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_LE(q.size(), 3u);
    received.push_back(*v);
  }
  producer.join();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
}

TEST(BoundedQueueTest, PushAllFailsWhenClosedMidway) {
  BoundedQueue<int> q(1);
  std::atomic<bool> result{true};
  std::thread producer([&] {
    std::deque<int> values = {1, 2, 3};
    result = q.PushAll(std::move(values));  // blocks after the first
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  EXPECT_FALSE(result.load()) << "PushAll must report the dropped remainder";
  EXPECT_EQ(q.Pop(), 1);  // what made it in before Close stays poppable
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, BatchedProducerConsumerConservesItems) {
  // PushAll bursts against a PopAll consumer under contention: nothing
  // lost, nothing duplicated, per-producer order preserved.
  constexpr size_t kProducers = 3;
  constexpr int kPerProducer = 2000;
  constexpr int kBurst = 16;
  struct Item {
    size_t producer;
    int seq;
  };
  BoundedQueue<Item> q(8);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int base = 0; base < kPerProducer; base += kBurst) {
        std::deque<Item> burst;
        for (int i = base; i < base + kBurst; ++i) burst.push_back({p, i});
        ASSERT_TRUE(q.PushAll(std::move(burst)));
      }
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  size_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::optional<std::deque<Item>> batch = q.PopAll();
    ASSERT_TRUE(batch.has_value());
    for (const Item& item : *batch) {
      EXPECT_EQ(item.seq, next_seq[item.producer])
          << "producer " << item.producer << " reordered";
      ++next_seq[item.producer];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPopAllUnblocksPushAllAcrossCapacityWindows) {
  // A PushAll burst much larger than capacity can only finish if the
  // non-blocking TryPopAll drain loop keeps freeing windows: the two
  // batch fast paths must hand off to each other without a blocking
  // consumer in the loop.
  BoundedQueue<int> q(2);
  constexpr int kCount = 500;
  std::deque<int> values;
  for (int i = 0; i < kCount; ++i) values.push_back(i);
  std::thread producer([&] { ASSERT_TRUE(q.PushAll(std::move(values))); });
  std::vector<int> received;
  while (received.size() < kCount) {
    std::deque<int> batch = q.TryPopAll();
    ASSERT_LE(batch.size(), q.capacity());
    received.insert(received.end(), batch.begin(), batch.end());
    // Cede the core between polls so the blocked producer can refill
    // (a hard spin starves it on single-CPU machines).
    if (batch.empty()) std::this_thread::yield();
  }
  producer.join();
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(received[i], i);
  EXPECT_TRUE(q.TryPopAll().empty());
}

TEST(BoundedQueueTest, TryPopAllInterleavedWithPushAllConservesItems) {
  // Multiple PushAll producers against a TryPopAll spin-drainer: no
  // loss, no duplication, per-producer FIFO — the same contract the
  // blocking PopAll consumer test checks, on the non-blocking path.
  constexpr size_t kProducers = 3;
  constexpr int kPerProducer = 1600;
  constexpr int kBurst = 8;
  static_assert(kPerProducer % kBurst == 0,
                "producers must deliver exactly kPerProducer items");
  struct Item {
    size_t producer;
    int seq;
  };
  BoundedQueue<Item> q(4);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int base = 0; base < kPerProducer; base += kBurst) {
        std::deque<Item> burst;
        for (int i = base; i < base + kBurst; ++i) burst.push_back({p, i});
        ASSERT_TRUE(q.PushAll(std::move(burst)));
      }
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  size_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::deque<Item> batch = q.TryPopAll();
    for (const Item& item : batch) {
      EXPECT_EQ(item.seq, next_seq[item.producer])
          << "producer " << item.producer << " reordered";
      ++next_seq[item.producer];
      ++received;
    }
    if (batch.empty()) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.TryPopAll().empty());
}

TEST(BoundedQueueTest, TryPopAllAfterCloseReturnsRemainderThenEmpty) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_EQ(q.TryPopAll(), (std::deque<int>{1, 2}));
  EXPECT_TRUE(q.TryPopAll().empty());
}

TEST(BoundedQueueTest, CloseDuringPushAllLeavesContiguousPrefix) {
  // Close lands while a PushAll burst is mid-flight against a
  // TryPopAll drainer. Whatever was accepted must be a gap-free,
  // duplicate-free prefix of the burst — Close may drop the tail but
  // never tears inside an accepted window.
  BoundedQueue<int> q(1);
  constexpr int kCount = 10000;
  std::atomic<bool> result{true};
  std::thread producer([&] {
    std::deque<int> values;
    for (int i = 0; i < kCount; ++i) values.push_back(i);
    result = q.PushAll(std::move(values));
  });
  std::vector<int> received;
  while (received.size() < 64) {
    std::deque<int> batch = q.TryPopAll();
    received.insert(received.end(), batch.begin(), batch.end());
    if (batch.empty()) std::this_thread::yield();
  }
  q.Close();
  producer.join();
  // Drain whatever the producer got in before Close won the race.
  std::deque<int> rest = q.TryPopAll();
  received.insert(received.end(), rest.begin(), rest.end());
  EXPECT_FALSE(result.load())
      << "PushAll must report the remainder Close dropped";
  ASSERT_LT(received.size(), static_cast<size_t>(kCount));
  for (size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], static_cast<int>(i)) << "prefix torn at " << i;
  }
}

TEST(BoundedQueueTest, CloseUnblocksBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));  // now full
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result = q.Push(2);  // blocks: queue full
    push_returned = true;
  });
  // Let the producer reach the blocking wait, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(push_returned.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load()) << "Push must fail after Close";
  // The element queued before Close stays poppable.
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseUnblocksBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::atomic<bool> pop_returned{false};
  std::thread consumer([&] {
    std::optional<int> v = q.Pop();  // blocks: queue empty
    EXPECT_EQ(v, std::nullopt);
    pop_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pop_returned.load());
  q.Close();
  consumer.join();
  EXPECT_TRUE(pop_returned.load());
  EXPECT_FALSE(q.Push(9)) << "Push after Close must fail";
}

TEST(BoundedQueueTest, CloseIsIdempotentAndDrainsRemainder) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

}  // namespace
}  // namespace punctsafe
