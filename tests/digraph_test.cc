#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace punctsafe {
namespace {

TEST(DigraphTest, EmptyAndSingletonAreStronglyConnected) {
  EXPECT_TRUE(Digraph(0).IsStronglyConnected());
  EXPECT_TRUE(Digraph(1).IsStronglyConnected());
}

TEST(DigraphTest, AddEdgeDeduplicates) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(DigraphTest, ReachableFromFollowsDirection) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  auto r = g.ReachableFrom(0);
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_TRUE(r[2]);
  EXPECT_FALSE(r[3]);
  auto r2 = g.ReachableFrom(2);
  EXPECT_FALSE(r2[0]);
  EXPECT_TRUE(r2[2]);
}

TEST(DigraphTest, ReachesAll) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.ReachesAll(0));
  EXPECT_FALSE(g.ReachesAll(2));
}

TEST(DigraphTest, CycleIsStronglyConnected) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  EXPECT_TRUE(g.IsStronglyConnected());
}

TEST(DigraphTest, PathIsNotStronglyConnected) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_FALSE(g.IsStronglyConnected());
}

TEST(DigraphTest, BidirectionalEdgesAreStronglyConnected) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_TRUE(g.IsStronglyConnected());
}

TEST(DigraphTest, DisconnectedIsNotStronglyConnected) {
  Digraph g(2);
  EXPECT_FALSE(g.IsStronglyConnected());
}

TEST(DigraphTest, Reversed) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Digraph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_FALSE(r.HasEdge(0, 1));
  EXPECT_EQ(r.num_edges(), 2u);
}

TEST(DigraphTest, SelfLoopAllowed) {
  Digraph g(1);
  g.AddEdge(0, 0);
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.IsStronglyConnected());
}

TEST(DigraphTest, ToString) {
  Digraph g(2);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.ToString(), "0->1");
}

}  // namespace
}  // namespace punctsafe
