#include "stream/scheme.h"

#include <gtest/gtest.h>

namespace punctsafe {
namespace {

Schema BidSchema() { return Schema::OfInts({"bidderid", "itemid", "increase"}); }

TEST(SchemeTest, OnAttributesResolvesNames) {
  auto s = PunctuationScheme::OnAttributes("bid", BidSchema(), {"itemid"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->stream(), "bid");
  EXPECT_EQ(s->PunctuatableAttrs(), (std::vector<size_t>{1}));
  EXPECT_TRUE(s->IsSimple());
  EXPECT_EQ(s->ToString(), "bid(_, +, _)");
}

TEST(SchemeTest, OnAttributesRejectsUnknown) {
  auto s = PunctuationScheme::OnAttributes("bid", BidSchema(), {"nope"});
  EXPECT_TRUE(s.status().IsNotFound());
}

TEST(SchemeTest, OnAttributesRejectsEmptyAndDuplicates) {
  EXPECT_TRUE(PunctuationScheme::OnAttributes("bid", BidSchema(), {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PunctuationScheme::OnAttributes("bid", BidSchema(),
                                              {"itemid", "itemid"})
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemeTest, MultiAttributeIsNotSimple) {
  auto s = PunctuationScheme::OnAttributes("bid", BidSchema(),
                                           {"bidderid", "itemid"});
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->IsSimple());
  EXPECT_EQ(s->NumPunctuatable(), 2u);
}

TEST(SchemeTest, InstantiateBindsConstants) {
  auto s = PunctuationScheme::OnAttributes("bid", BidSchema(), {"itemid"});
  auto p = s->Instantiate({Value(1)});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "(*, 1, *)");
  EXPECT_TRUE(s->IsInstantiation(*p));
}

TEST(SchemeTest, InstantiateChecksArity) {
  auto s = PunctuationScheme::OnAttributes("bid", BidSchema(), {"itemid"});
  EXPECT_TRUE(s->Instantiate({}).status().IsInvalidArgument());
  EXPECT_TRUE(
      s->Instantiate({Value(1), Value(2)}).status().IsInvalidArgument());
}

TEST(SchemeTest, IsInstantiationRequiresExactSignature) {
  auto s = PunctuationScheme::OnAttributes("bid", BidSchema(),
                                           {"bidderid", "itemid"});
  // Constants on exactly {0, 1}: yes.
  EXPECT_TRUE(s->IsInstantiation(
      Punctuation::OfConstants(3, {{0, Value(1)}, {1, Value(2)}})));
  // Constants on {1} only: an instantiation of a different scheme.
  EXPECT_FALSE(
      s->IsInstantiation(Punctuation::OfConstants(3, {{1, Value(2)}})));
  // Wrong arity: no.
  EXPECT_FALSE(
      s->IsInstantiation(Punctuation::OfConstants(2, {{0, Value(1)}})));
}

TEST(SchemeSetTest, AddRejectsDuplicates) {
  SchemeSet set;
  PunctuationScheme s("bid", {false, true, false});
  EXPECT_TRUE(set.Add(s).ok());
  EXPECT_TRUE(set.Add(s).IsAlreadyExists());
  EXPECT_EQ(set.size(), 1u);
}

TEST(SchemeSetTest, SchemesFor) {
  SchemeSet set;
  ASSERT_TRUE(set.Add(PunctuationScheme("a", {true})).ok());
  ASSERT_TRUE(set.Add(PunctuationScheme("b", {true, false})).ok());
  ASSERT_TRUE(set.Add(PunctuationScheme("b", {false, true})).ok());
  EXPECT_EQ(set.SchemesFor("a").size(), 1u);
  EXPECT_EQ(set.SchemesFor("b").size(), 2u);
  EXPECT_TRUE(set.SchemesFor("zzz").empty());
}

TEST(SchemeSetTest, HasSimpleSchemeOnIgnoresMultiAttrSchemes) {
  SchemeSet set;
  ASSERT_TRUE(set.Add(PunctuationScheme("s", {true, true, false})).ok());
  // The two-attribute scheme does NOT make attr 0 simply punctuatable.
  EXPECT_FALSE(set.HasSimpleSchemeOn("s", 0));
  ASSERT_TRUE(set.Add(PunctuationScheme("s", {true, false, false})).ok());
  EXPECT_TRUE(set.HasSimpleSchemeOn("s", 0));
  EXPECT_FALSE(set.HasSimpleSchemeOn("s", 1));
}

TEST(SchemeSetTest, AllSimple) {
  SchemeSet set;
  ASSERT_TRUE(set.Add(PunctuationScheme("s", {true, false})).ok());
  EXPECT_TRUE(set.AllSimple());
  ASSERT_TRUE(set.Add(PunctuationScheme("s", {true, true})).ok());
  EXPECT_FALSE(set.AllSimple());
}

TEST(SchemeSetTest, Restrict) {
  SchemeSet set;
  ASSERT_TRUE(set.Add(PunctuationScheme("a", {true})).ok());
  ASSERT_TRUE(set.Add(PunctuationScheme("b", {true})).ok());
  SchemeSet r = set.Restrict({"a"});
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.schemes()[0].stream(), "a");
}

TEST(SchemeSetTest, ToString) {
  SchemeSet set;
  ASSERT_TRUE(set.Add(PunctuationScheme("s", {false, true})).ok());
  EXPECT_EQ(set.ToString(), "{s(_, +)}");
}

}  // namespace
}  // namespace punctsafe
