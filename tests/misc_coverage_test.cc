// Coverage for the chooser-driven registration path and the
// never-purging reference join used as differential ground truth.

#include <gtest/gtest.h>

#include "core/generalized_punctuation_graph.h"
#include "core/punctuation_graph.h"
#include "exec/query_register.h"
#include "exec/reference_join.h"
#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

TEST(RegisterWithChooserTest, PicksASafePlanAndRuns) {
  QueryRegister reg;
  ASSERT_TRUE(reg.RegisterStream("S1", Schema::OfInts({"A", "B"})).ok());
  ASSERT_TRUE(reg.RegisterStream("S2", Schema::OfInts({"B", "C"})).ok());
  ASSERT_TRUE(reg.RegisterStream("S3", Schema::OfInts({"C", "A"})).ok());
  // Figure 8 schemes: two safe plans exist.
  ASSERT_TRUE(reg.RegisterScheme("S1", {"B"}).ok());
  ASSERT_TRUE(reg.RegisterScheme("S2", {"B"}).ok());
  ASSERT_TRUE(reg.RegisterScheme("S2", {"C"}).ok());
  ASSERT_TRUE(reg.RegisterScheme("S3", {"C", "A"}).ok());

  std::vector<JoinPredicateSpec> preds = {Eq({"S1", "B"}, {"S2", "B"}),
                                          Eq({"S2", "C"}, {"S3", "C"}),
                                          Eq({"S3", "A"}, {"S1", "A"})};
  WorkloadStats stats;
  stats.arrival_rate = {100, 100, 100};
  stats.punctuation_rate = {10, 10, 10};
  stats.selectivity = {0.01, 0.01, 0.01};

  auto rq = reg.RegisterWithChooser({"S1", "S2", "S3"}, preds, stats,
                                    CostObjective::kThroughput);
  ASSERT_TRUE(rq.ok()) << rq.status().ToString();
  EXPECT_TRUE(rq->safety.safe);
  // Whatever it picked must be executable and correct.
  rq->executor->PushTuple(0, Tuple({Value(1), Value(2)}), 1);
  rq->executor->PushTuple(1, Tuple({Value(2), Value(3)}), 2);
  rq->executor->PushTuple(2, Tuple({Value(3), Value(1)}), 3);
  EXPECT_EQ(rq->executor->num_results(), 1u);
}

TEST(RegisterWithChooserTest, UnsafeQueryStillRejected) {
  QueryRegister reg;
  ASSERT_TRUE(reg.RegisterStream("S1", Schema::OfInts({"A", "B"})).ok());
  ASSERT_TRUE(reg.RegisterStream("S2", Schema::OfInts({"B", "C"})).ok());
  WorkloadStats stats;
  stats.arrival_rate = {100, 100};
  stats.punctuation_rate = {0, 0};
  auto rq = reg.RegisterWithChooser(
      {"S1", "S2"}, {Eq({"S1", "B"}, {"S2", "B"})}, stats);
  EXPECT_TRUE(rq.status().IsFailedPrecondition());
}

TEST(ReferenceJoinTest, TriangleResultsAndUnboundedState) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto op = ReferenceJoinOperator::Create(q);
  ASSERT_TRUE(op.ok());
  std::vector<Tuple> results;
  (*op)->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) results.push_back(e.tuple);
  });
  (*op)->PushTuple(0, Tuple({Value(1), Value(2)}), 1);
  (*op)->PushTuple(1, Tuple({Value(2), Value(3)}), 2);
  (*op)->PushTuple(2, Tuple({Value(3), Value(1)}), 3);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], Tuple({Value(1), Value(2), Value(2), Value(3),
                               Value(3), Value(1)}));
  // Partial matches produce nothing.
  (*op)->PushTuple(2, Tuple({Value(3), Value(99)}), 4);
  EXPECT_EQ(results.size(), 1u);
  // Punctuations are counted but ignored: state never shrinks.
  (*op)->PushPunctuation(0, Punctuation::OfConstants(2, {{1, Value(2)}}),
                         5);
  EXPECT_EQ((*op)->TotalLiveTuples(), 4u);
  EXPECT_EQ((*op)->metrics().punctuations_received, 1u);
  EXPECT_EQ((*op)->TotalLivePunctuations(), 0u);
}

TEST(ReferenceJoinTest, DuplicateTuplesMultiplyResults) {
  StreamCatalog catalog = PaperCatalog();
  auto q = ContinuousJoinQuery::Create(catalog, {"S1", "S2"},
                                       {Eq({"S1", "B"}, {"S2", "B"})});
  ASSERT_TRUE(q.ok());
  auto op = ReferenceJoinOperator::Create(*q);
  ASSERT_TRUE(op.ok());
  uint64_t results = 0;
  (*op)->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) ++results;
  });
  (*op)->PushTuple(0, Tuple({Value(1), Value(7)}), 1);
  (*op)->PushTuple(0, Tuple({Value(1), Value(7)}), 2);  // duplicate
  (*op)->PushTuple(1, Tuple({Value(7), Value(9)}), 3);
  EXPECT_EQ(results, 2u);  // bag semantics
}

TEST(DotExportTest, PgDotContainsNodesAndLabeledEdges) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  std::string dot =
      PunctuationGraph::Build(q, testing_util::Fig5Schemes(catalog))
          .ToDot(q);
  EXPECT_NE(dot.find("digraph PG"), std::string::npos);
  EXPECT_NE(dot.find("\"S2\" -> \"S1\" [label=\"B\"]"),
            std::string::npos);
  EXPECT_NE(dot.find("\"S1\" -> \"S3\" [label=\"A\"]"),
            std::string::npos);
}

TEST(DotExportTest, GpgDotRendersGeneralizedEdgeAsJunction) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  std::string dot =
      GeneralizedPunctuationGraph::Build(q,
                                         testing_util::Fig8Schemes(catalog))
          .ToDot(q);
  EXPECT_NE(dot.find("digraph GPG"), std::string::npos);
  // The S3 pair scheme appears as a point junction fed by S1 and S2.
  EXPECT_NE(dot.find("shape=point"), std::string::npos);
  EXPECT_NE(dot.find("g0 -> \"S3\""), std::string::npos);
  // Simple schemes render as plain labeled edges.
  EXPECT_NE(dot.find("\"S2\" -> \"S1\""), std::string::npos);
}

}  // namespace
}  // namespace punctsafe
