#include "plan/scheme_selection.h"

#include <gtest/gtest.h>

#include "core/transformed_punctuation_graph.h"
#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

TEST(SchemeSelectionTest, Fig5AlreadyMinimal) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto minimal = MinimalSafeSchemeSubset(q, Fig5Schemes(catalog));
  ASSERT_TRUE(minimal.ok());
  // All three schemes are needed: the cycle breaks without any one.
  EXPECT_EQ(minimal->size(), 3u);
}

TEST(SchemeSelectionTest, RedundantSchemeDropped) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  // Redundant extra scheme: S1 on A as well.
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S1", {"A"})).ok());
  auto minimal = MinimalSafeSchemeSubset(q, schemes);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->size(), 3u);
  // The result must still be safe.
  EXPECT_TRUE(TransformedPunctuationGraph::Build(q, *minimal)
                  .CollapsedToSingleNode());
  // And truly minimal: dropping any scheme breaks safety.
  const auto& all = minimal->schemes();
  for (size_t drop = 0; drop < all.size(); ++drop) {
    std::vector<PunctuationScheme> kept;
    for (size_t i = 0; i < all.size(); ++i) {
      if (i != drop) kept.push_back(all[i]);
    }
    EXPECT_FALSE(TransformedPunctuationGraph::Build(q, SchemeSet(kept))
                     .CollapsedToSingleNode());
  }
}

TEST(SchemeSelectionTest, Fig8MinimalSubset) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto minimal = MinimalSafeSchemeSubset(q, Fig8Schemes(catalog));
  ASSERT_TRUE(minimal.ok());
  // All four Figure 8 schemes are load-bearing: dropping any one
  // disconnects the generalized graph (verified by the loop below in
  // RedundantSchemeDropped style), so the minimal subset is the full
  // set.
  EXPECT_EQ(minimal->size(), 4u);
  EXPECT_TRUE(TransformedPunctuationGraph::Build(q, *minimal)
                  .CollapsedToSingleNode());
}

TEST(SchemeSelectionTest, UnsafeQueryFails) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  EXPECT_TRUE(MinimalSafeSchemeSubset(q, SchemeSet())
                  .status()
                  .IsFailedPrecondition());
}

TEST(SchemeSelectionTest, IrrelevantSchemesDetected) {
  StreamCatalog catalog = PaperCatalog();
  // Binary query S1-S2: S3's scheme is trivially irrelevant; a scheme
  // on a non-join attribute is irrelevant too.
  auto q = ContinuousJoinQuery::Create(catalog, {"S1", "S2"},
                                       {Eq({"S1", "B"}, {"S2", "B"})});
  ASSERT_TRUE(q.ok());
  SchemeSet schemes;
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S1", {"B"})).ok());  // useful
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S2", {"B"})).ok());  // useful
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S2", {"C"})).ok());  // useless
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S3", {"A"})).ok());  // outside
  auto irrelevant = IrrelevantSchemes(*q, schemes);
  ASSERT_EQ(irrelevant.size(), 2u);
  // The outside scheme and the non-join-attribute scheme.
  bool s3_found = false, s2c_found = false;
  for (const PunctuationScheme& s : irrelevant) {
    if (s.stream() == "S3") s3_found = true;
    if (s.stream() == "S2" && s.punctuatable(1)) s2c_found = true;
  }
  EXPECT_TRUE(s3_found);
  EXPECT_TRUE(s2c_found);
}

TEST(SchemeSelectionTest, AllRelevantWhenMinimal) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto irrelevant = IrrelevantSchemes(q, Fig5Schemes(catalog));
  EXPECT_TRUE(irrelevant.empty());
}

}  // namespace
}  // namespace punctsafe
