// Differential test for adaptive rebalancing: for random queries,
// random plan shapes, and random covering traces (uniform and
// zipf-skewed), a sharded executor that is forced through migrations
// at random punctuation-aligned mid-stream points — slot reshuffles
// via RebalanceNow and elastic grow/shrink via ResizeShards, into
// pre-allocated headroom and back — must produce the identical result
// multiset, final live state, and punctuation state as the serial
// executor that never shards at all. The failure message logs the RNG
// seed and migration schedule for replay.
//
// tools/ci.sh runs this suite under both TSan and ASan: the migration
// protocol's capture/merge/re-split and the ShardMap swap are exactly
// the kind of cross-thread state handoff sanitizers exist to check.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/input_manager.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "test_util.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

struct Observation {
  std::vector<Tuple> results;  // sorted
  size_t live_tuples = 0;
  size_t live_punctuations = 0;
};

int64_t MaxTimestamp(const Trace& trace) {
  int64_t max_ts = 0;
  for (const TraceEvent& e : trace) {
    max_ts = std::max(max_ts, e.element.timestamp);
  }
  return max_ts;
}

Observation RunSerial(const RandomQueryInstance& inst, const PlanShape& shape,
                      const Trace& trace) {
  ExecutorConfig config;
  config.keep_results = true;
  auto exec = PlanExecutor::Create(inst.query, inst.schemes, shape, config);
  PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  int64_t now = MaxTimestamp(trace) + 1;
  size_t prev;
  do {
    prev = (*exec)->TotalLiveTuples();
    (*exec)->SweepAll(now);
  } while ((*exec)->TotalLiveTuples() != prev);
  Observation obs;
  obs.results = (*exec)->kept_results();
  std::sort(obs.results.begin(), obs.results.end());
  obs.live_tuples = (*exec)->TotalLiveTuples();
  obs.live_punctuations = (*exec)->TotalLivePunctuations();
  return obs;
}

// One migration action at a scheduled trace position.
struct Migration {
  size_t at_event;       // force after pushing this event index
  size_t resize_to;      // 0 = RebalanceNow (slot reshuffle only)
};

Observation RunRebalanced(const RandomQueryInstance& inst,
                          const PlanShape& shape, const Trace& trace,
                          ExecutorConfig config,
                          const std::vector<Migration>& schedule) {
  auto exec =
      ParallelExecutor::Create(inst.query, inst.schemes, shape, config);
  PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
  size_t next = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    PUNCTSAFE_CHECK_OK((*exec)->Push(trace[i]));
    while (next < schedule.size() && schedule[next].at_event == i) {
      const int64_t ts = trace[i].element.timestamp;
      if (schedule[next].resize_to == 0) {
        PUNCTSAFE_CHECK_OK((*exec)->RebalanceNow(ts));
      } else {
        PUNCTSAFE_CHECK_OK((*exec)->ResizeShards(schedule[next].resize_to,
                                                 ts));
      }
      ++next;
    }
  }
  int64_t now = MaxTimestamp(trace) + 1;
  size_t prev;
  do {
    prev = (*exec)->TotalLiveTuples();
    PUNCTSAFE_CHECK_OK((*exec)->Drain(now));
  } while ((*exec)->TotalLiveTuples() != prev);
  Observation obs;
  obs.results = (*exec)->kept_results();
  std::sort(obs.results.begin(), obs.results.end());
  obs.live_tuples = (*exec)->TotalLiveTuples();
  obs.live_punctuations = (*exec)->TotalLivePunctuations();
  (*exec)->Stop();
  return obs;
}

PlanShape ShapeForTrial(size_t num_streams, uint64_t seed) {
  if (seed % 2 == 0 || num_streams < 3) {
    return PlanShape::SingleMJoin(num_streams);
  }
  std::vector<size_t> order(num_streams);
  for (size_t i = 0; i < num_streams; ++i) order[i] = i;
  return PlanShape::LeftDeepBinary(order);
}

TEST(RebalanceDifferentialTest, HundredTrialsWithForcedMidStreamMigrations) {
  // Replay a failing trial with PUNCTSAFE_TEST_SEED=<seed from the
  // failure message>.
  const uint64_t base_seed = testing_util::TestBaseSeed(0);
  for (uint64_t trial = 0; trial < 100; ++trial) {
    const uint64_t seed = base_seed + trial;
    Rng rng(seed * 977 + 5);

    RandomQueryConfig qconfig;
    qconfig.num_streams = 2 + seed % 4;
    qconfig.attrs_per_stream = 2;
    qconfig.extra_predicates = seed % 2;
    qconfig.multi_attr_prob = 0.25;
    qconfig.schemeless_prob = 0.15;
    qconfig.seed = seed * 41 + 3;
    auto inst = MakeRandomQuery(qconfig);
    ASSERT_TRUE(inst.ok()) << inst.status().ToString();

    CoveringTraceConfig tconfig;
    tconfig.num_generations = 5;
    tconfig.values_per_generation = 3;
    tconfig.tuples_per_generation = 12;
    tconfig.zipf_s = (trial % 3 == 0) ? 0.0 : 1.3;  // mix uniform + skewed
    tconfig.seed = seed;
    Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);

    PlanShape shape = ShapeForTrial(inst->query.num_streams(), seed);
    Observation serial = RunSerial(*inst, shape, trace);

    // Executor under test: start on 2 active of 4 allocated shards so
    // grow has headroom and shrink has occupied shards to drain.
    ExecutorConfig config;
    config.keep_results = true;
    config.shards = 2;
    config.queue_capacity = 1 + seed % 64;
    config.batch_size = (trial % 4 == 1) ? 32 : 1;
    config.mjoin.purge_policy =
        (seed % 3 == 2) ? PurgePolicy::kLazy : PurgePolicy::kEager;
    config.mjoin.lazy_batch = 4;
    config.rebalance.enabled = true;
    config.rebalance.interval_punctuations = 0;  // schedule-driven only
    config.rebalance.max_shards = 4;

    // 1-3 forced migrations at random positions: slot reshuffles and
    // grows/shrinks across the full active range [1, 4].
    const size_t num_migrations = 1 + rng.NextBelow(3);
    std::vector<Migration> schedule;
    for (size_t m = 0; m < num_migrations; ++m) {
      Migration mig;
      mig.at_event = rng.NextBelow(trace.size());
      mig.resize_to = rng.NextBelow(5);  // 0 = reshuffle, 1..4 = resize
      schedule.push_back(mig);
    }
    std::sort(schedule.begin(), schedule.end(),
              [](const Migration& a, const Migration& b) {
                return a.at_event < b.at_event;
              });

    std::string plan;
    for (const Migration& m : schedule) {
      plan += " @" + std::to_string(m.at_event) +
              (m.resize_to == 0 ? std::string("=reshuffle")
                                : "=resize" + std::to_string(m.resize_to));
    }
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " zipf=" << tconfig.zipf_s
                 << " batch=" << config.batch_size << " migrations:" << plan
                 << " query=" << inst->query.ToString()
                 << " shape=" << shape.ToString(inst->query));

    Observation got = RunRebalanced(*inst, shape, trace, config, schedule);
    ASSERT_EQ(got.results, serial.results) << "result multiset diverged";
    EXPECT_EQ(got.live_tuples, serial.live_tuples)
        << "final live state diverged";
    EXPECT_EQ(got.live_punctuations, serial.live_punctuations)
        << "final punctuation state diverged";
  }
}

}  // namespace
}  // namespace punctsafe
