#include "core/plan_safety.h"

#include <gtest/gtest.h>

#include "core/generalized_punctuation_graph.h"
#include "core/naive_checker.h"
#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

// Figure 5 vs Figure 7: the single MJoin is safe, and NO binary tree
// over the same query is.
TEST(PlanSafetyTest, Fig5MJoinSafe) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto report =
      CheckPlanSafety(q, Fig5Schemes(catalog), PlanShape::SingleMJoin(3));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe);
  ASSERT_EQ(report->operators.size(), 1u);
  EXPECT_TRUE(report->operators[0].purgeable);
  // Every stream's schemes propagate to the root.
  EXPECT_EQ(report->root_schemes.size(), 3u);
}

TEST(PlanSafetyTest, Fig7EveryBinaryTreeUnsafe) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  // All 3 left-deep orders x the upper-level symmetry = all binary
  // shapes over 3 leaves.
  size_t binary_checked = 0;
  for (PlanShape& shape : EnumerateAllShapes({0, 1, 2})) {
    if (!shape.IsBinaryTree()) continue;
    ++binary_checked;
    auto report = CheckPlanSafety(q, schemes, shape);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->safe) << shape.ToString(q);
  }
  EXPECT_EQ(binary_checked, 3u);  // ((12)3), ((13)2), ((23)1)
}

// The paper's Figure 7 diagnosis: in (S1 ⨝ S2) the lower operator
// cannot purge S1 — there is no punctuation from S2 on B.
TEST(PlanSafetyTest, Fig7LowerOperatorDiagnosis) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PlanShape shape = PlanShape::LeftDeepBinary({0, 1, 2});
  auto report = CheckPlanSafety(q, Fig5Schemes(catalog), shape);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->safe);
  // Post-order: operators[0] is the lower join (S1, S2).
  const OperatorVerdict& lower = report->operators[0];
  EXPECT_EQ(lower.child_streams[0], (std::vector<size_t>{0}));
  EXPECT_FALSE(lower.child_purgeable[0]);  // S1 stuck
  EXPECT_TRUE(lower.child_purgeable[1]);   // S2 purgeable via S1(B)
  EXPECT_FALSE(report->ToString(q).empty());
}

// Under Figure 8 schemes, S2(+,_) gives the lower binary operator both
// directions... S1's state needs a scheme on S2.B — present! So the
// left-deep tree ((S1 S2) S3) becomes safe: verify propagation makes
// the upper operator work.
TEST(PlanSafetyTest, Fig8LeftDeepBecomesSafe) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PlanShape shape = PlanShape::LeftDeepBinary({0, 1, 2});
  auto report = CheckPlanSafety(q, Fig8Schemes(catalog), shape);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe) << report->ToString(q);
}

TEST(PlanSafetyTest, LeavesMustMatchQuery) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  // Missing S3.
  auto r1 = CheckPlanSafety(
      q, schemes, PlanShape::Join({PlanShape::Leaf(0), PlanShape::Leaf(1)}));
  EXPECT_TRUE(r1.status().IsInvalidArgument());
  // Duplicate S1.
  auto r2 = CheckPlanSafety(
      q, schemes,
      PlanShape::Join(
          {PlanShape::Leaf(0), PlanShape::Leaf(0), PlanShape::Leaf(1)}));
  EXPECT_TRUE(r2.status().IsInvalidArgument());
}

// An unpurgeable child blocks scheme propagation: build a 4-stream
// chain where the inner pair purges fine but loses one side's schemes.
TEST(PlanSafetyTest, PropagationBlockedByUnpurgeableChild) {
  StreamCatalog catalog;
  for (const char* name : {"A", "B", "C"}) {
    ASSERT_TRUE(catalog.Register(name, Schema::OfInts({"x", "y"})).ok());
  }
  auto q = ContinuousJoinQuery::Create(
      catalog, {"A", "B", "C"},
      {Eq({"A", "x"}, {"B", "x"}), Eq({"B", "y"}, {"C", "y"})});
  ASSERT_TRUE(q.ok());
  SchemeSet schemes;
  // A(x): purges B's waiters at the lower join; B has no scheme, so A
  // is stuck at the lower join and nothing propagates from A...
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "A", {"x"})).ok());
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "C", {"y"})).ok());

  PlanShape lower_ab = PlanShape::LeftDeepBinary({0, 1, 2});
  auto report = CheckPlanSafety(*q, schemes, lower_ab);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->safe);
  const OperatorVerdict& lower = report->operators[0];
  EXPECT_FALSE(lower.child_purgeable[0]);  // A waits on B forever
  EXPECT_TRUE(lower.child_purgeable[1]);   // B purged via A(x)
}

// MJoin shape safety must coincide with Theorem 4's verdict (the GPG
// over raw streams IS the single MJoin's local graph).
TEST(PlanSafetyTest, SingleMJoinMatchesGpgVerdict) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  for (const SchemeSet& schemes :
       {Fig5Schemes(catalog), Fig8Schemes(catalog), SchemeSet()}) {
    GeneralizedPunctuationGraph gpg =
        GeneralizedPunctuationGraph::Build(q, schemes);
    auto report = CheckPlanSafety(q, schemes, PlanShape::SingleMJoin(3));
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->safe, gpg.IsStronglyConnected());
  }
}

TEST(PlanSafetyTest, RawAvailableSchemesFiltersArity) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes;
  ASSERT_TRUE(schemes.Add(PunctuationScheme("S1", {true})).ok());  // arity 1
  ASSERT_TRUE(schemes.Add(PunctuationScheme("S1", {false, true})).ok());
  auto avail = RawAvailableSchemes(q, schemes, 0);
  ASSERT_EQ(avail.size(), 1u);
  EXPECT_EQ(avail[0].attrs, (std::vector<size_t>{1}));
}

}  // namespace
}  // namespace punctsafe
