#include "query/cjq.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::PaperCatalog;

TEST(CjqTest, CreateResolvesPredicates) {
  StreamCatalog catalog = PaperCatalog();
  auto q = ContinuousJoinQuery::Create(
      catalog, {"S1", "S2"}, {Eq({"S1", "B"}, {"S2", "B"})});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_streams(), 2u);
  ASSERT_EQ(q->predicates().size(), 1u);
  const ResolvedPredicate& p = q->predicates()[0];
  EXPECT_EQ(p.left_stream, 0u);
  EXPECT_EQ(p.left_attr, 1u);  // S1.B
  EXPECT_EQ(p.right_stream, 1u);
  EXPECT_EQ(p.right_attr, 0u);  // S2.B
}

TEST(CjqTest, PredicateSidesCanonicalized) {
  StreamCatalog catalog = PaperCatalog();
  // Written right-to-left; stored with left_stream < right_stream.
  auto q = ContinuousJoinQuery::Create(
      catalog, {"S1", "S2"}, {Eq({"S2", "B"}, {"S1", "B"})});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates()[0].left_stream, 0u);
}

TEST(CjqTest, DuplicatePredicatesCollapse) {
  StreamCatalog catalog = PaperCatalog();
  auto q = ContinuousJoinQuery::Create(
      catalog, {"S1", "S2"},
      {Eq({"S1", "B"}, {"S2", "B"}), Eq({"S2", "B"}, {"S1", "B"})});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates().size(), 1u);
}

TEST(CjqTest, RejectsSingleStream) {
  StreamCatalog catalog = PaperCatalog();
  EXPECT_TRUE(ContinuousJoinQuery::Create(catalog, {"S1"}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(CjqTest, RejectsDuplicateStream) {
  StreamCatalog catalog = PaperCatalog();
  EXPECT_TRUE(ContinuousJoinQuery::Create(catalog, {"S1", "S1"},
                                          {Eq({"S1", "A"}, {"S1", "B"})})
                  .status()
                  .IsInvalidArgument());
}

TEST(CjqTest, RejectsUnknownStream) {
  StreamCatalog catalog = PaperCatalog();
  EXPECT_TRUE(ContinuousJoinQuery::Create(catalog, {"S1", "ZZ"},
                                          {Eq({"S1", "B"}, {"ZZ", "B"})})
                  .status()
                  .IsNotFound());
}

TEST(CjqTest, RejectsUnknownAttribute) {
  StreamCatalog catalog = PaperCatalog();
  EXPECT_TRUE(ContinuousJoinQuery::Create(catalog, {"S1", "S2"},
                                          {Eq({"S1", "Q"}, {"S2", "B"})})
                  .status()
                  .IsNotFound());
}

TEST(CjqTest, RejectsPredicateOutsideQuery) {
  StreamCatalog catalog = PaperCatalog();
  EXPECT_TRUE(ContinuousJoinQuery::Create(catalog, {"S1", "S2"},
                                          {Eq({"S1", "A"}, {"S3", "A"})})
                  .status()
                  .IsNotFound());
}

TEST(CjqTest, RejectsSelfJoinPredicate) {
  StreamCatalog catalog = PaperCatalog();
  EXPECT_TRUE(ContinuousJoinQuery::Create(
                  catalog, {"S1", "S2"},
                  {Eq({"S1", "A"}, {"S1", "B"}), Eq({"S1", "B"}, {"S2", "B"})})
                  .status()
                  .IsInvalidArgument());
}

TEST(CjqTest, RejectsTypeMismatch) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog
                  .Register("num", Schema({{"k", ValueType::kInt64}}))
                  .ok());
  ASSERT_TRUE(catalog
                  .Register("str", Schema({{"k", ValueType::kString}}))
                  .ok());
  EXPECT_TRUE(ContinuousJoinQuery::Create(catalog, {"num", "str"},
                                          {Eq({"num", "k"}, {"str", "k"})})
                  .status()
                  .IsInvalidArgument());
}

TEST(CjqTest, RejectsNoPredicates) {
  StreamCatalog catalog = PaperCatalog();
  EXPECT_TRUE(ContinuousJoinQuery::Create(catalog, {"S1", "S2"}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(CjqTest, RejectsDisconnectedJoinGraph) {
  StreamCatalog catalog;
  for (const char* name : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(catalog.Register(name, Schema::OfInts({"x"})).ok());
  }
  // a-b and c-d: two components -> cross product -> rejected.
  auto q = ContinuousJoinQuery::Create(
      catalog, {"a", "b", "c", "d"},
      {Eq({"a", "x"}, {"b", "x"}), Eq({"c", "x"}, {"d", "x"})});
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(CjqTest, Accessors) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = testing_util::TriangleQuery(catalog);
  EXPECT_EQ(q.StreamIndex("S2"), 1u);
  EXPECT_FALSE(q.StreamIndex("ZZ").has_value());

  EXPECT_EQ(q.PredicatesBetween(0, 1).size(), 1u);
  EXPECT_EQ(q.PredicatesBetween(1, 0).size(), 1u);
  EXPECT_EQ(q.PredicatesBetween(0, 0).size(), 0u);

  // S1(A,B): both attributes join.
  EXPECT_EQ(q.JoinAttrsOf(0), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(q.NeighborsOf(0), (std::vector<size_t>{1, 2}));
}

TEST(CjqTest, ToStringReadable) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = testing_util::Fig3Query(catalog);
  EXPECT_EQ(q.ToString(),
            "CJQ(S1,S2,S3 | S1.B = S2.B AND S2.C = S3.C)");
}

}  // namespace
}  // namespace punctsafe
