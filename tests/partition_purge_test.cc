// Partitioned execution regression tests, pinning the two claims the
// shard design rests on (see exec/partition_router.h):
//  1. ComputePartitionSpec only admits partitionings that are exact —
//     every joinable assignment lands on one shard — and falls back to
//     a single shard otherwise;
//  2. a broadcast punctuation purges across the shards exactly the
//     tuples the unpartitioned operator would purge: no double purge
//     (each tuple lives on exactly one shard) and no stranded state (a
//     shard holding a key's tuples always receives every punctuation).
//
// The differential test covers the same ground statistically; these
// tests pin the mechanisms directly on hand-built queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "exec/input_manager.h"
#include "exec/parallel_executor.h"
#include "exec/partition_router.h"
#include "exec/plan_executor.h"
#include "test_util.h"
#include "util/logging.h"

namespace punctsafe {
namespace {

using testing_util::Fig3Query;
using testing_util::Fig5Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

// Three streams joined on one shared key attribute: T0.k = T1.k = T2.k
// (the single equivalence class the partitioner wants).
struct SharedKeyFixture {
  StreamCatalog catalog;
  ContinuousJoinQuery query;
  SchemeSet schemes;

  static SharedKeyFixture Make() {
    StreamCatalog catalog;
    PUNCTSAFE_CHECK_OK(catalog.Register("T0", Schema::OfInts({"k", "a"})));
    PUNCTSAFE_CHECK_OK(catalog.Register("T1", Schema::OfInts({"k", "b"})));
    PUNCTSAFE_CHECK_OK(catalog.Register("T2", Schema::OfInts({"k", "c"})));
    auto q = ContinuousJoinQuery::Create(
        catalog, {"T0", "T1", "T2"},
        {Eq({"T0", "k"}, {"T1", "k"}), Eq({"T1", "k"}, {"T2", "k"})});
    PUNCTSAFE_CHECK(q.ok()) << q.status().ToString();
    SchemeSet schemes;
    PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "T0", {"k"})));
    PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "T1", {"k"})));
    PUNCTSAFE_CHECK_OK(schemes.Add(SchemeOn(catalog, "T2", {"k"})));
    return {catalog, *q, schemes};
  }
};

std::vector<LocalInput> RawInputs(size_t n) {
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < n; ++s) inputs.push_back({{s}, {}});
  return inputs;
}

TEST(ComputePartitionSpecTest, BinaryEquiJoinPartitionable) {
  StreamCatalog catalog;
  PUNCTSAFE_CHECK_OK(catalog.Register("L", Schema::OfInts({"a", "k"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("R", Schema::OfInts({"k", "b"})));
  auto q = ContinuousJoinQuery::Create(catalog, {"L", "R"},
                                       {Eq({"L", "k"}, {"R", "k"})});
  ASSERT_TRUE(q.ok());
  PartitionSpec spec = ComputePartitionSpec(*q, RawInputs(2));
  ASSERT_TRUE(spec.partitionable) << spec.detail;
  // L's key is its attribute 1, R's its attribute 0.
  EXPECT_EQ(spec.hash_offsets, (std::vector<size_t>{1, 0}));
}

TEST(ComputePartitionSpecTest, ThreeWaySharedKeyPartitionable) {
  SharedKeyFixture fx = SharedKeyFixture::Make();
  PartitionSpec spec = ComputePartitionSpec(fx.query, RawInputs(3));
  ASSERT_TRUE(spec.partitionable) << spec.detail;
  EXPECT_EQ(spec.hash_offsets, (std::vector<size_t>{0, 0, 0}));
}

TEST(ComputePartitionSpecTest, TwoClassChainNotPartitionable) {
  // Figure 3 chain: S1.B=S2.B and S2.C=S3.C form two disjoint classes,
  // neither covering all three inputs.
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = Fig3Query(catalog);
  PartitionSpec spec = ComputePartitionSpec(q, RawInputs(3));
  EXPECT_FALSE(spec.partitionable);
  EXPECT_NE(spec.detail.find("not partitionable"), std::string::npos);
}

TEST(ComputePartitionSpecTest, TriangleNotPartitionableAsSingleMJoin) {
  // The triangle's three predicates form three classes ({A}, {B},
  // {C}), each spanning only two of the three inputs.
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PartitionSpec spec = ComputePartitionSpec(q, RawInputs(3));
  EXPECT_FALSE(spec.partitionable);
}

TEST(ComputePartitionSpecTest, TriangleBinaryTopPartitionable) {
  // The same triangle as a binary top operator over inputs
  // {S1,S2} and {S3}: binary operators verify every predicate on
  // expansion, so any class covering both inputs is exact.
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  std::vector<LocalInput> inputs = {{{0, 1}, {}}, {{2}, {}}};
  PartitionSpec spec = ComputePartitionSpec(q, inputs);
  ASSERT_TRUE(spec.partitionable) << spec.detail;
  ASSERT_EQ(spec.hash_offsets.size(), 2u);
  // The chosen class is either {S1.A, S3.A} (composite offsets 0/1) or
  // {S2.C, S3.C} (offsets 3/0) — both exact; the deterministic scan
  // picks the C class here, so pin it to catch accidental reshuffles.
  EXPECT_EQ(spec.hash_offsets, (std::vector<size_t>{3, 0}));
}

TEST(ComputePartitionSpecTest, OutOfClassPredicateRejectedForMultiway) {
  // T0.k=T1.k=T2.k covers all inputs, but the extra T0.a=T2.c sits
  // outside the class: a 3-way operator must reject (a shard-local
  // expansion could miss tuples co-partitioned by k but matched on a).
  StreamCatalog catalog;
  PUNCTSAFE_CHECK_OK(catalog.Register("T0", Schema::OfInts({"k", "a"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("T1", Schema::OfInts({"k", "b"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("T2", Schema::OfInts({"k", "c"})));
  auto q = ContinuousJoinQuery::Create(
      catalog, {"T0", "T1", "T2"},
      {Eq({"T0", "k"}, {"T1", "k"}), Eq({"T1", "k"}, {"T2", "k"}),
       Eq({"T0", "a"}, {"T2", "c"})});
  ASSERT_TRUE(q.ok());
  PartitionSpec spec = ComputePartitionSpec(*q, RawInputs(3));
  EXPECT_FALSE(spec.partitionable);

  // The same shape as a binary operator is fine.
  std::vector<LocalInput> binary = {{{0, 1}, {}}, {{2}, {}}};
  EXPECT_TRUE(ComputePartitionSpec(*q, binary).partitionable);
}

TEST(ComputePartitionSpecTest, NoCrossInputPredicateNotPartitionable) {
  // A hypothetical operator joining T0 and T2 directly: the chain's
  // predicates both touch T1, which is outside this operator, so no
  // localized predicate remains and the operator cannot partition (it
  // is a cross product at this level).
  SharedKeyFixture fx = SharedKeyFixture::Make();
  std::vector<LocalInput> inputs = {{{0}, {}}, {{2}, {}}};
  PartitionSpec spec = ComputePartitionSpec(fx.query, inputs);
  EXPECT_FALSE(spec.partitionable);
  EXPECT_NE(spec.detail.find("no cross-input"), std::string::npos);
}

TEST(ComputePartitionSpecTest, ShardOfIsStableAndInRange) {
  SharedKeyFixture fx = SharedKeyFixture::Make();
  PartitionSpec spec = ComputePartitionSpec(fx.query, RawInputs(3));
  ASSERT_TRUE(spec.partitionable);
  for (int64_t k = 0; k < 100; ++k) {
    Tuple t0({Value(k), Value(7)});
    Tuple t1({Value(k), Value(9)});
    size_t shard = spec.ShardOf(0, t0, 4);
    EXPECT_LT(shard, 4u);
    // Same key => same shard, on every input (that is the exactness
    // invariant the router provides).
    EXPECT_EQ(spec.ShardOf(1, t1, 4), shard);
    EXPECT_EQ(spec.ShardOf(2, t1, 4), shard);
    EXPECT_EQ(spec.ShardOf(0, t0, 1), 0u);
  }
}

TEST(PunctuationAlignerTest, ForwardsOnceAllShardsArrive) {
  PunctuationAligner aligner(3);
  Punctuation p = Punctuation::OfConstants(2, {{0, Value(5)}});
  int64_t ts = 0;
  EXPECT_FALSE(aligner.Arrive(0, p, 10, &ts));
  EXPECT_FALSE(aligner.Arrive(2, p, 12, &ts));
  EXPECT_EQ(aligner.pending(), 1u);
  EXPECT_TRUE(aligner.Arrive(1, p, 11, &ts));
  EXPECT_EQ(ts, 12);  // max over the contributing emissions
  EXPECT_EQ(aligner.pending(), 0u);
}

TEST(PunctuationAlignerTest, ReEmissionDoesNotCoverForMissingShard) {
  // Shard 0 emitting the same punctuation twice (e.g. its input
  // punctuation arrived twice while it held no matching tuples) must
  // not complete the barrier while shard 1 still holds matchers.
  PunctuationAligner aligner(2);
  Punctuation p = Punctuation::OfConstants(1, {{0, Value(1)}});
  int64_t ts = 0;
  EXPECT_FALSE(aligner.Arrive(0, p, 1, &ts));
  EXPECT_FALSE(aligner.Arrive(0, p, 2, &ts));
  EXPECT_FALSE(aligner.Arrive(0, p, 3, &ts));
  EXPECT_TRUE(aligner.Arrive(1, p, 2, &ts));
  EXPECT_EQ(ts, 3);
}

TEST(PunctuationAlignerTest, EntryResetsForLaterRounds) {
  PunctuationAligner aligner(2);
  Punctuation p = Punctuation::OfConstants(1, {{0, Value(1)}});
  int64_t ts = 0;
  EXPECT_FALSE(aligner.Arrive(0, p, 1, &ts));
  EXPECT_TRUE(aligner.Arrive(1, p, 1, &ts));
  // Second round re-aligns from scratch.
  EXPECT_FALSE(aligner.Arrive(1, p, 5, &ts));
  EXPECT_TRUE(aligner.Arrive(0, p, 6, &ts));
  EXPECT_EQ(ts, 6);
}

TEST(PunctuationAlignerTest, DistinctPunctuationsAlignIndependently) {
  PunctuationAligner aligner(2);
  Punctuation p1 = Punctuation::OfConstants(1, {{0, Value(1)}});
  Punctuation p2 = Punctuation::OfConstants(1, {{0, Value(2)}});
  int64_t ts = 0;
  EXPECT_FALSE(aligner.Arrive(0, p1, 1, &ts));
  EXPECT_FALSE(aligner.Arrive(1, p2, 1, &ts));
  EXPECT_EQ(aligner.pending(), 2u);
  EXPECT_TRUE(aligner.Arrive(1, p1, 1, &ts));
  EXPECT_TRUE(aligner.Arrive(0, p2, 1, &ts));
}

// The purge-equivalence regression: a broadcast punctuation purges
// across the shards exactly what the unpartitioned operator purges.
TEST(PartitionPurgeTest, BroadcastPunctuationPurgesExactlyLikeSerial) {
  SharedKeyFixture fx = SharedKeyFixture::Make();
  PlanShape shape = PlanShape::SingleMJoin(3);

  // 24 keys spread over the shards; every key gets one tuple per
  // stream (so full results exist), then k-punctuations close a prefix
  // of the keys on every stream.
  Trace trace;
  const int64_t kKeys = 24, kClosed = 16;
  int64_t ts = 0;
  for (int64_t k = 0; k < kKeys; ++k) {
    trace.push_back({"T0", StreamElement::OfTuple(
                               Tuple({Value(k), Value(100 + k)}), ++ts)});
    trace.push_back({"T1", StreamElement::OfTuple(
                               Tuple({Value(k), Value(200 + k)}), ++ts)});
    trace.push_back({"T2", StreamElement::OfTuple(
                               Tuple({Value(k), Value(300 + k)}), ++ts)});
  }
  for (int64_t k = 0; k < kClosed; ++k) {
    for (const char* s : {"T0", "T1", "T2"}) {
      trace.push_back({s, StreamElement::OfPunctuation(
                              Punctuation::OfConstants(2, {{0, Value(k)}}),
                              ++ts)});
    }
  }

  ExecutorConfig config;
  config.keep_results = true;

  auto serial = PlanExecutor::Create(fx.query, fx.schemes, shape, config);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  PUNCTSAFE_CHECK_OK(FeedTrace(serial->get(), trace));
  (*serial)->SweepAll(ts + 1);

  uint64_t serial_purged = 0, serial_dropped = 0;
  for (const auto& op : (*serial)->operators()) {
    for (size_t i = 0; i < op->num_inputs(); ++i) {
      StateMetricsSnapshot m = op->state_metrics(i).Snapshot();
      serial_purged += m.purged;
      serial_dropped += m.dropped_on_arrival;
    }
  }
  // Sanity: the trace really exercises the purge path and leaves the
  // open keys live.
  ASSERT_GT(serial_purged + serial_dropped, 0u);
  ASSERT_EQ((*serial)->TotalLiveTuples(), 3u * (kKeys - kClosed));

  for (size_t shards : {2u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    config.shards = shards;
    auto parallel =
        ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ((*parallel)->num_operator_groups(), 1u);
    PUNCTSAFE_CHECK_OK(FeedTraceParallel(parallel->get(), trace));

    // Result multiset identical.
    std::vector<Tuple> serial_results = (*serial)->kept_results();
    std::vector<Tuple> parallel_results = (*parallel)->kept_results();
    std::sort(serial_results.begin(), serial_results.end());
    std::sort(parallel_results.begin(), parallel_results.end());
    EXPECT_EQ(parallel_results, serial_results);

    // No stranded state: closed keys are gone from every shard, open
    // keys all survive.
    EXPECT_EQ((*parallel)->TotalLiveTuples(), 3u * (kKeys - kClosed));

    // No double purge: total removals across all shards equal the
    // unpartitioned operator's (each tuple lives on exactly one shard,
    // so it can only be removed once).
    uint64_t parallel_purged = 0, parallel_dropped = 0;
    for (const auto& op : (*parallel)->operators()) {
      for (size_t i = 0; i < op->num_inputs(); ++i) {
        StateMetricsSnapshot m = op->state_metrics(i).Snapshot();
        parallel_purged += m.purged;
        parallel_dropped += m.dropped_on_arrival;
      }
    }
    EXPECT_EQ(parallel_purged + parallel_dropped,
              serial_purged + serial_dropped);

    // Punctuations are replicated per shard; the logical count must
    // still match the serial executor.
    EXPECT_EQ((*parallel)->TotalLivePunctuations(),
              (*serial)->TotalLivePunctuations());

    (*parallel)->Stop();
  }
}

// Shard layout surface: partitionable operators fan out to K shards,
// non-partitionable ones fall back to one, and the per-group metrics
// roll up consistently.
TEST(PartitionPurgeTest, GroupSnapshotsReflectShardLayout) {
  SharedKeyFixture fx = SharedKeyFixture::Make();
  ExecutorConfig config;
  config.shards = 4;

  auto exec = ParallelExecutor::Create(fx.query, fx.schemes,
                                       PlanShape::SingleMJoin(3), config);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  int64_t ts = 0;
  for (int64_t k = 0; k < 32; ++k) {
    (*exec)->PushTuple(0, Tuple({Value(k), Value(k)}), ++ts);
    (*exec)->PushTuple(1, Tuple({Value(k), Value(k)}), ++ts);
  }
  PUNCTSAFE_CHECK_OK((*exec)->Drain(ts + 1));

  auto snaps = (*exec)->GroupSnapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_TRUE(snaps[0].partitioned);
  EXPECT_EQ(snaps[0].num_shards, 4u);
  ASSERT_EQ(snaps[0].shard_live.size(), 4u);
  EXPECT_NE(snaps[0].partition_detail.find("partition key"),
            std::string::npos);
  // 4 shard instances of the one logical operator.
  EXPECT_EQ((*exec)->operators().size(), 4u);
  EXPECT_EQ((*exec)->num_operator_groups(), 1u);
  // Shard live counts partition the logical total, and with 32 keys
  // over 4 shards the hash should not send everything to one shard.
  size_t sum = std::accumulate(snaps[0].shard_live.begin(),
                               snaps[0].shard_live.end(), size_t{0});
  EXPECT_EQ(sum, (*exec)->TotalLiveTuples());
  EXPECT_EQ(sum, snaps[0].aggregate.live);
  EXPECT_GT(*std::min_element(snaps[0].shard_live.begin(),
                              snaps[0].shard_live.end()),
            0u);
  (*exec)->Stop();

  // The triangle as a single MJoin is not partitionable: requesting 4
  // shards silently falls back to 1 (and says why).
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery tq = TriangleQuery(catalog);
  auto tri = ParallelExecutor::Create(tq, Fig5Schemes(catalog),
                                      PlanShape::SingleMJoin(3), config);
  ASSERT_TRUE(tri.ok()) << tri.status().ToString();
  auto tri_snaps = (*tri)->GroupSnapshots();
  ASSERT_EQ(tri_snaps.size(), 1u);
  EXPECT_FALSE(tri_snaps[0].partitioned);
  EXPECT_EQ(tri_snaps[0].num_shards, 1u);
  EXPECT_NE(tri_snaps[0].partition_detail.find("not partitionable"),
            std::string::npos);
  EXPECT_EQ((*tri)->operators().size(), 1u);
  (*tri)->Stop();
}

}  // namespace
}  // namespace punctsafe
