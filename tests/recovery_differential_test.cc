// Recovery differential oracle: checkpoint/restore must be invisible.
// For 100 randomized (query, plan shape, covering trace) trials, an
// uninterrupted serial run is compared against
//  * kill-at-arbitrary-cut + restore + replay on the serial executor
//    (the snapshot round-trips through the serialized byte format, so
//    the codec is on the recovery path, not just in unit tests);
//  * the same snapshot split into 2K shard pieces and re-merged (the
//    monoid inverse law on live state, checked byte-for-byte and then
//    by replay);
//  * parallel kill + restore + replay swept across arena {off,on} x
//    shards {1,2,4} (the checkpoint barrier, shard merge at capture,
//    and ShardOf re-split at restore);
//  * the serial snapshot restored into a sharded executor (snapshots
//    are mode-agnostic).
// Equality is the same observational bar parallel_differential_test
// sets: identical result multiset, identical final live state at the
// sweep fixpoint, and identical total removals (purged + dropped).
// Each trial rotates the ingest batch size through {1, 7, 64, 1024}
// (applied to every leg, reference included): snapshots are taken at
// batch boundaries — the serial leg calls FlushIngest() before
// Checkpoint(), the parallel barrier flushes implicitly — and restore
// + replay must land on the same fixpoint regardless of where the
// batch boundaries fall relative to the kill point. batch=1 trials
// reproduce the historical tuple-at-a-time behavior bit for bit.
//
// tools/ci.sh runs this suite under both ASan and TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/checkpoint.h"
#include "exec/input_manager.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "test_util.h"
#include "util/logging.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

struct Observation {
  std::vector<Tuple> results;  // sorted
  uint64_t num_results = 0;
  size_t live_tuples = 0;
  size_t live_punctuations = 0;
  uint64_t removed = 0;  // purged + dropped_on_arrival, all inputs
};

int64_t MaxTimestamp(const Trace& trace) {
  int64_t max_ts = 0;
  for (const TraceEvent& e : trace) {
    max_ts = std::max(max_ts, e.element.timestamp);
  }
  return max_ts;
}

uint64_t TotalRemoved(
    const std::vector<std::unique_ptr<MJoinOperator>>& operators) {
  uint64_t removed = 0;
  for (const auto& op : operators) {
    for (size_t i = 0; i < op->num_inputs(); ++i) {
      StateMetricsSnapshot m = op->state_metrics(i).Snapshot();
      removed += m.purged + m.dropped_on_arrival;
    }
  }
  return removed;
}

Observation ObserveSerial(PlanExecutor* exec, int64_t now) {
  size_t prev;
  do {
    prev = exec->TotalLiveTuples();
    exec->SweepAll(now);
  } while (exec->TotalLiveTuples() != prev);
  Observation obs;
  obs.results = exec->kept_results();
  std::sort(obs.results.begin(), obs.results.end());
  obs.num_results = exec->num_results();
  obs.live_tuples = exec->TotalLiveTuples();
  obs.live_punctuations = exec->TotalLivePunctuations();
  obs.removed = TotalRemoved(exec->operators());
  return obs;
}

Observation ObserveParallel(ParallelExecutor* exec, int64_t now) {
  PUNCTSAFE_CHECK_OK(exec->Drain(now));
  size_t prev;
  do {
    prev = exec->TotalLiveTuples();
    PUNCTSAFE_CHECK_OK(exec->Drain(now));
  } while (exec->TotalLiveTuples() != prev);
  Observation obs;
  obs.results = exec->kept_results();
  std::sort(obs.results.begin(), obs.results.end());
  obs.num_results = exec->num_results();
  obs.live_tuples = exec->TotalLiveTuples();
  obs.live_punctuations = exec->TotalLivePunctuations();
  obs.removed = TotalRemoved(exec->operators());
  exec->Stop();
  return obs;
}

void ExpectEqualObservation(const Observation& got, const Observation& want) {
  ASSERT_EQ(got.results, want.results) << "result multiset diverged";
  EXPECT_EQ(got.num_results, want.num_results);
  EXPECT_EQ(got.live_tuples, want.live_tuples)
      << "final live state diverged";
  EXPECT_EQ(got.live_punctuations, want.live_punctuations)
      << "final punctuation state diverged";
  EXPECT_EQ(got.removed, want.removed) << "total removal count diverged";
}

PlanShape ShapeForTrial(size_t num_streams, uint64_t seed) {
  if (seed % 2 == 0 || num_streams < 3) {
    return PlanShape::SingleMJoin(num_streams);
  }
  std::vector<size_t> order(num_streams);
  for (size_t i = 0; i < num_streams; ++i) order[i] = i;
  return PlanShape::LeftDeepBinary(order);
}

TEST(RecoveryDifferentialTest, HundredRandomKillRestoreTrialsMatchSerial) {
  // Replay a failing trial with PUNCTSAFE_TEST_SEED=<seed from the
  // failure message> (the run then starts at that seed).
  const uint64_t base_seed = testing_util::TestBaseSeed(0);
  for (uint64_t trial = 0; trial < 100; ++trial) {
    const uint64_t seed = base_seed + trial;
    RandomQueryConfig qconfig;
    qconfig.num_streams = 2 + seed % 4;
    qconfig.attrs_per_stream = 2;
    qconfig.extra_predicates = seed % 2;
    qconfig.multi_attr_prob = 0.25;
    qconfig.schemeless_prob = 0.15;
    qconfig.seed = seed * 41 + 3;
    auto inst = MakeRandomQuery(qconfig);
    ASSERT_TRUE(inst.ok()) << inst.status().ToString();

    CoveringTraceConfig tconfig;
    tconfig.num_generations = 4;
    tconfig.values_per_generation = 3;
    tconfig.tuples_per_generation = 10;
    tconfig.seed = seed;
    Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);

    PlanShape shape = ShapeForTrial(inst->query.num_streams(), seed);
    ExecutorConfig config;
    config.keep_results = true;
    config.mjoin.purge_policy =
        (seed % 3 == 2) ? PurgePolicy::kLazy : PurgePolicy::kEager;
    config.mjoin.lazy_batch = 4;
    config.queue_capacity = 1 + seed % 32;
    config.arena = false;
    const size_t kBatchSizes[] = {1, 7, 64, 1024};
    config.batch_size = kBatchSizes[trial % 4];

    const int64_t now = MaxTimestamp(trace) + 1;
    // Kill point: any push boundary, including "nothing consumed yet"
    // and "everything consumed".
    const size_t cut = (seed * 7919) % (trace.size() + 1);

    // Uninterrupted serial reference.
    auto ref = PlanExecutor::Create(inst->query, inst->schemes, shape,
                                    config);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    for (const TraceEvent& e : trace) {
      ASSERT_TRUE((*ref)->Push(e).ok());
    }
    Observation want = ObserveSerial(ref->get(), now);

    // --- Leg A: serial kill at `cut`, restore via the byte format,
    // replay the suffix.
    std::string checkpoint_bytes;
    {
      auto run = PlanExecutor::Create(inst->query, inst->schemes, shape,
                                      config);
      ASSERT_TRUE(run.ok());
      for (size_t i = 0; i < cut; ++i) {
        ASSERT_TRUE((*run)->Push(trace[i]).ok());
      }
      // Snapshots are batch-aligned: deliver the open ingest batch so
      // the checkpoint covers every accepted tuple.
      (*run)->FlushIngest();
      checkpoint_bytes = SerializeSnapshot((*run)->Checkpoint());
      // The "crashed" executor is simply dropped here.
    }
    Result<StateSnapshot> snapshot = DeserializeSnapshot(checkpoint_bytes);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " cut=" << cut << "/"
                   << trace.size() << " batch=" << config.batch_size
                   << " leg=serial-restore query="
                   << inst->query.ToString()
                   << " shape=" << shape.ToString(inst->query));
      auto resumed = PlanExecutor::Create(inst->query, inst->schemes, shape,
                                          config);
      ASSERT_TRUE(resumed.ok());
      ASSERT_TRUE((*resumed)->RestoreState(*snapshot).ok());
      // Restore must reproduce the checkpoint bit-exactly before any
      // replay (capture o restore = identity).
      ASSERT_EQ(SerializeSnapshot((*resumed)->Checkpoint()),
                checkpoint_bytes);
      for (size_t i = cut; i < trace.size(); ++i) {
        ASSERT_TRUE((*resumed)->Push(trace[i]).ok());
      }
      ExpectEqualObservation(ObserveSerial(resumed->get(), now), want);
    }

    // --- Leg B: the snapshot split into 2K shard pieces and merged
    // back (varying the association order) is the same snapshot, and
    // restoring the merged copy resumes identically.
    {
      const size_t pieces = 2u << (seed % 3);  // 2, 4, or 8
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " cut=" << cut
                   << " leg=split-merge pieces=" << pieces);
      std::vector<StateSnapshot> parts = SplitSnapshot(*snapshot, pieces);
      ASSERT_EQ(parts.size(), pieces);
      // Fold in a seed-rotated order so association varies by trial.
      const size_t start = seed % pieces;
      StateSnapshot merged = parts[start];
      for (size_t i = 1; i < pieces; ++i) {
        merged = MergeSnapshots(merged, parts[(start + i) % pieces]);
      }
      ASSERT_EQ(SerializeSnapshot(merged), checkpoint_bytes)
          << "split -> merge is not the identity";
      auto resumed = PlanExecutor::Create(inst->query, inst->schemes, shape,
                                          config);
      ASSERT_TRUE(resumed.ok());
      ASSERT_TRUE((*resumed)->RestoreState(merged).ok());
      for (size_t i = cut; i < trace.size(); ++i) {
        ASSERT_TRUE((*resumed)->Push(trace[i]).ok());
      }
      ExpectEqualObservation(ObserveSerial(resumed->get(), now), want);
    }

    // --- Leg C: parallel kill + restore + replay, swept across
    // storage backend x shard count.
    for (bool arena : {false, true}) {
      for (size_t shards : {1u, 2u, 4u}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " cut=" << cut
                     << " leg=parallel-restore shards=" << shards
                     << " arena=" << (arena ? "on" : "off")
                     << " batch=" << config.batch_size << " query="
                     << inst->query.ToString()
                     << " shape=" << shape.ToString(inst->query));
        ExecutorConfig pconfig = config;
        pconfig.arena = arena;
        pconfig.shards = shards;

        StateSnapshot captured;
        {
          auto run = ParallelExecutor::Create(inst->query, inst->schemes,
                                              shape, pconfig);
          ASSERT_TRUE(run.ok()) << run.status().ToString();
          for (size_t i = 0; i < cut; ++i) {
            ASSERT_TRUE((*run)->Push(trace[i]).ok());
          }
          Result<StateSnapshot> snap = (*run)->Checkpoint(now);
          ASSERT_TRUE(snap.ok()) << snap.status().ToString();
          captured = std::move(*snap);
          (*run)->Stop();  // the kill
        }
        auto resumed = ParallelExecutor::Create(inst->query, inst->schemes,
                                                shape, pconfig);
        ASSERT_TRUE(resumed.ok());
        ASSERT_TRUE((*resumed)->RestoreState(captured).ok());
        for (size_t i = cut; i < trace.size(); ++i) {
          ASSERT_TRUE((*resumed)->Push(trace[i]).ok());
        }
        ExpectEqualObservation(ObserveParallel(resumed->get(), now), want);
      }
    }

    // --- Leg D: cross-mode — the serial snapshot restored into a
    // sharded executor (the format carries no mode/shard information).
    {
      const size_t shards = 1 + seed % 4;
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " cut=" << cut
                   << " leg=cross-mode shards=" << shards
                   << " batch=" << config.batch_size);
      ExecutorConfig pconfig = config;
      pconfig.shards = shards;
      auto resumed = ParallelExecutor::Create(inst->query, inst->schemes,
                                              shape, pconfig);
      ASSERT_TRUE(resumed.ok());
      ASSERT_TRUE((*resumed)->RestoreState(*snapshot).ok());
      for (size_t i = cut; i < trace.size(); ++i) {
        ASSERT_TRUE((*resumed)->Push(trace[i]).ok());
      }
      ExpectEqualObservation(ObserveParallel(resumed->get(), now), want);
    }
  }
}

}  // namespace
}  // namespace punctsafe
