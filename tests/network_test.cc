#include "workload/network.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "exec/input_manager.h"

namespace punctsafe {
namespace {

TEST(NetworkTest, SetupAndSafety) {
  QueryRegister reg;
  ASSERT_TRUE(NetworkWorkload::Setup(&reg).ok());
  auto rq = reg.Register(NetworkWorkload::QueryStreams(),
                         NetworkWorkload::QueryPredicates());
  ASSERT_TRUE(rq.ok()) << rq.status().ToString();
  EXPECT_TRUE(rq->safety.safe);
  EXPECT_TRUE(rq->safety.used_simple_path);
}

TEST(NetworkTest, TraceRespectsLifespanContract) {
  NetworkConfig config;
  config.num_flows = 200;
  Trace trace = NetworkWorkload::Generate(config);
  int64_t lifespan = NetworkWorkload::RecommendedLifespan(config);
  ASSERT_GT(lifespan, 0);

  // Within any window of `lifespan` ticks after an end-of-flow
  // punctuation for flow f, no packet tuple for f may appear — that
  // is exactly what a lifespan-aware store assumes.
  std::map<int64_t, int64_t> packet_closed_at;
  for (const TraceEvent& e : trace) {
    if (e.stream != NetworkWorkload::kPackets) continue;
    if (e.element.is_punctuation()) {
      packet_closed_at[e.element.punctuation.pattern(0).constant().AsInt64()] =
          e.element.timestamp;
    } else {
      int64_t flow = e.element.tuple.at(0).AsInt64();
      auto it = packet_closed_at.find(flow);
      if (it != packet_closed_at.end()) {
        EXPECT_GE(e.element.timestamp, it->second + lifespan)
            << "flow id " << flow << " reused before the lifespan ended";
      }
    }
  }
}

TEST(NetworkTest, FlowIdsActuallyRecycle) {
  NetworkConfig config;
  config.num_flows = 200;
  config.id_space = 32;
  Trace trace = NetworkWorkload::Generate(config);
  std::map<int64_t, size_t> uses;
  for (const TraceEvent& e : trace) {
    if (e.stream == NetworkWorkload::kFlows && e.element.is_tuple()) {
      ++uses[e.element.tuple.at(0).AsInt64()];
    }
  }
  size_t recycled = 0;
  for (const auto& [id, count] : uses) {
    EXPECT_LT(id, static_cast<int64_t>(config.id_space));
    if (count > 1) ++recycled;
  }
  EXPECT_GT(recycled, 0u) << "the workload must exercise id reuse";
}

// Experiment E10 in miniature: a lifespan-aware executor stays
// correct and bounded on the recycling trace.
TEST(NetworkTest, LifespanExecutorBoundedOnRecyclingTrace) {
  NetworkConfig config;
  config.num_flows = 300;
  QueryRegister reg;
  ASSERT_TRUE(NetworkWorkload::Setup(&reg).ok());
  ExecutorConfig exec_config;
  exec_config.mjoin.punctuation_lifespan =
      NetworkWorkload::RecommendedLifespan(config);
  auto rq = reg.Register(NetworkWorkload::QueryStreams(),
                         NetworkWorkload::QueryPredicates(), exec_config);
  ASSERT_TRUE(rq.ok());
  Trace trace = NetworkWorkload::Generate(config);
  ASSERT_TRUE(FeedTrace(rq->executor.get(), trace).ok());

  EXPECT_GT(rq->executor->num_results(), 0u);
  // Punctuation stores bounded by expiry: far fewer live than stored.
  size_t stored = 0;
  for (const auto& op : rq->executor->operators()) {
    stored += op->metrics().punctuations_stored;
  }
  EXPECT_GT(stored, 100u);
  EXPECT_LT(rq->executor->TotalLivePunctuations(), stored / 2);
}

TEST(NetworkTest, DeterministicPerSeed) {
  NetworkConfig config;
  config.num_flows = 40;
  Trace a = NetworkWorkload::Generate(config);
  Trace b = NetworkWorkload::Generate(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].element.ToString(), b[i].element.ToString());
  }
}

}  // namespace
}  // namespace punctsafe
