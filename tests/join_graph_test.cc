#include "query/join_graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::PaperCatalog;

TEST(JoinGraphTest, Fig3ChainStructure) {
  StreamCatalog catalog = PaperCatalog();
  JoinGraph g(testing_util::Fig3Query(catalog));
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.IsConnected());
  EXPECT_FALSE(g.IsCyclic());
}

TEST(JoinGraphTest, TriangleIsCyclic) {
  StreamCatalog catalog = PaperCatalog();
  JoinGraph g(testing_util::TriangleQuery(catalog));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.IsCyclic());
}

TEST(JoinGraphTest, SpanningTreeCoversAllNodes) {
  StreamCatalog catalog = PaperCatalog();
  JoinGraph g(testing_util::TriangleQuery(catalog));
  for (size_t root = 0; root < 3; ++root) {
    SpanningTree t = g.SpanningTreeFrom(root);
    EXPECT_EQ(t.root, root);
    EXPECT_EQ(t.bfs_order.size(), 3u);
    EXPECT_EQ(t.bfs_order[0], root);
    EXPECT_EQ(t.parent[root], root);
    for (size_t v = 0; v < 3; ++v) {
      if (v == root) continue;
      // Parent chain terminates at root.
      size_t cur = v;
      int hops = 0;
      while (cur != root && hops++ < 10) cur = t.parent[cur];
      EXPECT_EQ(cur, root);
      // Tree edges are join-graph edges.
      EXPECT_TRUE(g.HasEdge(v, t.parent[v]));
    }
  }
}

TEST(JoinGraphTest, ChainSpanningTreeFromMiddle) {
  StreamCatalog catalog = PaperCatalog();
  JoinGraph g(testing_util::Fig3Query(catalog));
  SpanningTree t = g.SpanningTreeFrom(1);
  EXPECT_EQ(t.parent[0], 1u);
  EXPECT_EQ(t.parent[2], 1u);
}

TEST(JoinGraphTest, ToString) {
  StreamCatalog catalog = PaperCatalog();
  JoinGraph g(testing_util::Fig3Query(catalog));
  EXPECT_EQ(g.ToString(), "0--1, 1--2");
}

}  // namespace
}  // namespace punctsafe
