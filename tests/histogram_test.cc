// LogHistogram invariants: the bucket map is monotone and
// self-inverse at lower bounds, the relative quantile error is
// bounded by the sub-bucket resolution, snapshot Merge is associative
// and commutative (what lets shard histograms roll up in any order),
// and Quantile is monotone in q with Quantile(1) exact.

#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace punctsafe {
namespace obs {
namespace {

TEST(LogHistogramTest, SmallValuesMapExactly) {
  for (uint64_t v = 0; v < LogHistogram::kSubCount; ++v) {
    EXPECT_EQ(LogHistogram::BucketOf(v), v);
    EXPECT_EQ(LogHistogram::BucketLowerBound(v), v);
  }
}

TEST(LogHistogramTest, BucketLowerBoundIsInverse) {
  // Every reachable bucket index maps back to itself through its
  // lower bound, and lower bounds strictly increase (monotone bins).
  uint64_t prev = 0;
  const size_t top = LogHistogram::BucketOf(~uint64_t{0});
  for (size_t idx = 0; idx <= top; ++idx) {
    uint64_t lb = LogHistogram::BucketLowerBound(idx);
    EXPECT_EQ(LogHistogram::BucketOf(lb), idx) << "idx=" << idx;
    if (idx > 0) {
      EXPECT_GT(lb, prev) << "idx=" << idx;
    }
    prev = lb;
  }
}

TEST(LogHistogramTest, BucketOfIsMonotone) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    uint64_t a = rng() >> (rng() % 48);  // spread across magnitudes
    uint64_t b = rng() >> (rng() % 48);
    if (a > b) std::swap(a, b);
    EXPECT_LE(LogHistogram::BucketOf(a), LogHistogram::BucketOf(b))
        << a << " vs " << b;
  }
}

TEST(LogHistogramTest, OctaveBoundaries) {
  // Around each power of two the bucket must step, never jump back.
  for (int msb = 4; msb < 62; ++msb) {
    uint64_t p = uint64_t{1} << msb;
    EXPECT_LT(LogHistogram::BucketOf(p - 1), LogHistogram::BucketOf(p));
    EXPECT_EQ(LogHistogram::BucketOf(p),
              LogHistogram::BucketOf(p + (p >> LogHistogram::kSubBits) - 1))
        << "sub-bucket width at 2^" << msb;
  }
}

TEST(LogHistogramTest, RecordSnapshotCountsSumMax) {
  LogHistogram h;
  h.Record(3);
  h.Record(3);
  h.Record(1000);
  h.Record(-5);  // clamps to 0
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.sum, 3u + 3u + 1000u + 0u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.Mean(), 1006.0 / 4.0);
}

TEST(LogHistogramTest, QuantileRelativeErrorBounded) {
  // For a point mass at v, every quantile must return a value within
  // one sub-bucket below v (the lower-bound convention), i.e. a
  // relative error of at most 2^-kSubBits.
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    uint64_t v = (rng() >> (rng() % 40)) + 1;
    LogHistogram h;
    h.Record(static_cast<int64_t>(v & 0x7fffffffffffffffULL));
    uint64_t vv = v & 0x7fffffffffffffffULL;
    HistogramSnapshot s = h.Snapshot();
    uint64_t q50 = s.Quantile(0.5);
    EXPECT_LE(q50, vv);
    double rel = vv > 0 ? double(vv - q50) / double(vv) : 0.0;
    EXPECT_LE(rel, 1.0 / (1 << LogHistogram::kSubBits) + 1e-12)
        << "v=" << vv << " q50=" << q50;
  }
}

HistogramSnapshot RandomSnapshot(uint64_t seed, int n) {
  LogHistogram h;
  std::mt19937_64 rng(seed);
  for (int i = 0; i < n; ++i) {
    h.Record(static_cast<int64_t>(rng() >> (rng() % 50)));
  }
  return h.Snapshot();
}

void ExpectEqualSnapshots(const HistogramSnapshot& a,
                          const HistogramSnapshot& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  ASSERT_EQ(a.counts.size(), b.counts.size());
  for (size_t i = 0; i < a.counts.size(); ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << "bucket " << i;
  }
}

TEST(HistogramSnapshotTest, MergeAssociativeAndCommutative) {
  HistogramSnapshot a = RandomSnapshot(1, 1000);
  HistogramSnapshot b = RandomSnapshot(2, 500);
  HistogramSnapshot c = RandomSnapshot(3, 2000);

  HistogramSnapshot ab_c = a;  // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);

  HistogramSnapshot bc = b;  // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);

  ExpectEqualSnapshots(ab_c, a_bc);

  HistogramSnapshot ba = b;  // b + a == a + b
  ba.Merge(a);
  HistogramSnapshot ab = a;
  ab.Merge(b);
  ExpectEqualSnapshots(ab, ba);
}

TEST(HistogramSnapshotTest, MergeHandlesEmptyAndSizeMismatch) {
  HistogramSnapshot empty;  // no buckets at all
  HistogramSnapshot full = RandomSnapshot(4, 100);
  HistogramSnapshot merged = empty;
  merged.Merge(full);
  ExpectEqualSnapshots(merged, full);

  HistogramSnapshot full2 = full;
  full2.Merge(empty);
  ExpectEqualSnapshots(full2, full);
}

TEST(HistogramSnapshotTest, QuantileMonotoneInQ) {
  HistogramSnapshot s = RandomSnapshot(5, 5000);
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0 + 1e-9; q += 0.01) {
    uint64_t v = s.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_EQ(s.Quantile(1.0), s.max);
  EXPECT_EQ(s.Quantile(2.0), s.max);
}

TEST(HistogramSnapshotTest, QuantileOfEmptyIsZero) {
  HistogramSnapshot s;
  EXPECT_EQ(s.Quantile(0.5), 0u);
  EXPECT_EQ(s.Quantile(1.0), 0u);
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(HistogramSnapshotTest, QuantileAgainstSortedReference) {
  // Quantile must land within one bucket of the exact order
  // statistic on a concrete multiset.
  std::vector<uint64_t> values;
  LogHistogram h;
  std::mt19937_64 rng(6);
  for (int i = 0; i < 4000; ++i) {
    uint64_t v = rng() % 1000000;
    values.push_back(v);
    h.Record(static_cast<int64_t>(v));
  }
  std::sort(values.begin(), values.end());
  HistogramSnapshot s = h.Snapshot();
  for (double q : {0.5, 0.95, 0.99}) {
    uint64_t rank = static_cast<uint64_t>(q * values.size());
    if (rank < 1) rank = 1;
    uint64_t exact = values[rank - 1];
    uint64_t approx = s.Quantile(q);
    // The lower-bound convention under-reports by at most one
    // sub-bucket; allow exactly that.
    EXPECT_LE(approx, exact);
    size_t b_exact = LogHistogram::BucketOf(exact);
    size_t b_approx = LogHistogram::BucketOf(approx);
    EXPECT_GE(b_approx + 1, b_exact) << "q=" << q;
  }
}

}  // namespace
}  // namespace obs
}  // namespace punctsafe
