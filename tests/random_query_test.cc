#include "workload/random_query.h"

#include <gtest/gtest.h>

#include <set>

namespace punctsafe {
namespace {

TEST(RandomQueryTest, ProducesValidConnectedQueries) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 5;
    config.seed = seed;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok()) << inst.status().ToString();
    EXPECT_EQ(inst->query.num_streams(), config.num_streams);
    EXPECT_GE(inst->query.predicates().size(), config.num_streams - 1);
  }
}

TEST(RandomQueryTest, DeterministicPerSeed) {
  RandomQueryConfig config;
  config.seed = 42;
  auto a = MakeRandomQuery(config);
  auto b = MakeRandomQuery(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->query.ToString(), b->query.ToString());
  EXPECT_EQ(a->schemes.ToString(), b->schemes.ToString());
}

TEST(RandomQueryTest, RejectsDegenerateConfig) {
  RandomQueryConfig config;
  config.num_streams = 1;
  EXPECT_TRUE(MakeRandomQuery(config).status().IsInvalidArgument());
  config.num_streams = 2;
  config.attrs_per_stream = 0;
  EXPECT_TRUE(MakeRandomQuery(config).status().IsInvalidArgument());
}

TEST(RandomQueryTest, SchemeKnobsMatter) {
  // schemeless_prob = 1: no schemes at all.
  RandomQueryConfig config;
  config.schemeless_prob = 1.0;
  config.seed = 7;
  auto none = MakeRandomQuery(config);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->schemes.size(), 0u);

  // multi_attr_prob = 1 with enough attrs: some multi-attr schemes.
  config.schemeless_prob = 0.0;
  config.multi_attr_prob = 1.0;
  config.num_streams = 6;
  bool any_multi = false;
  for (uint64_t seed = 0; seed < 10 && !any_multi; ++seed) {
    config.seed = seed;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());
    for (const PunctuationScheme& s : inst->schemes.schemes()) {
      any_multi |= !s.IsSimple();
    }
  }
  EXPECT_TRUE(any_multi);
}

TEST(RandomQueryTest, CoveringTraceRespectsGenerations) {
  RandomQueryConfig qconfig;
  qconfig.seed = 3;
  auto inst = MakeRandomQuery(qconfig);
  ASSERT_TRUE(inst.ok());

  CoveringTraceConfig tconfig;
  tconfig.num_generations = 5;
  tconfig.values_per_generation = 3;
  tconfig.tuples_per_generation = 10;
  Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);

  // Tuples use only their generation's value pool; punctuations close
  // the whole pool; later generations never reuse earlier values.
  int64_t max_closed = -1;
  for (const TraceEvent& e : trace) {
    if (e.element.is_tuple()) {
      for (const Value& v : e.element.tuple.values()) {
        EXPECT_GT(v.AsInt64(), max_closed);
      }
    } else {
      for (size_t a : e.element.punctuation.ConstrainedAttrs()) {
        max_closed = std::max(
            max_closed, e.element.punctuation.pattern(a).constant().AsInt64());
      }
    }
  }
  EXPECT_GE(max_closed, 0);
}

TEST(RandomQueryTest, CoveringTracePunctuationsInstantiateSchemes) {
  RandomQueryConfig qconfig;
  qconfig.multi_attr_prob = 0.6;
  qconfig.schemeless_prob = 0.0;
  qconfig.seed = 9;
  auto inst = MakeRandomQuery(qconfig);
  ASSERT_TRUE(inst.ok());
  CoveringTraceConfig tconfig;
  tconfig.num_generations = 2;
  Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);
  size_t punct_count = 0;
  for (const TraceEvent& e : trace) {
    if (!e.element.is_punctuation()) continue;
    ++punct_count;
    bool instantiates_some = false;
    for (const PunctuationScheme& s : inst->schemes.schemes()) {
      if (s.stream() == e.stream &&
          s.IsInstantiation(e.element.punctuation)) {
        instantiates_some = true;
      }
    }
    EXPECT_TRUE(instantiates_some) << e.element.ToString();
  }
  EXPECT_GT(punct_count, 0u);
}

TEST(RandomQueryTest, NoPunctuationsWhenDisabled) {
  RandomQueryConfig qconfig;
  qconfig.seed = 5;
  auto inst = MakeRandomQuery(qconfig);
  ASSERT_TRUE(inst.ok());
  CoveringTraceConfig tconfig;
  tconfig.emit_punctuations = false;
  for (const TraceEvent& e :
       MakeCoveringTrace(inst->query, inst->schemes, tconfig)) {
    EXPECT_TRUE(e.element.is_tuple());
  }
}

}  // namespace
}  // namespace punctsafe
