#include "core/punctuation_graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig3Query;
using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

// Paper Example 3 / Figure 5: the punctuation graph of the triangle
// query under one simple scheme per stream is the directed cycle
// S2 -> S1 -> S3 -> S2 (indices 1->0, 0->2, 2->1).
TEST(PunctuationGraphTest, Fig5EdgesMatchPaper) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PunctuationGraph pg = PunctuationGraph::Build(q, Fig5Schemes(catalog));

  EXPECT_EQ(pg.digraph().num_edges(), 3u);
  // Scheme on S1.B + predicate S1.B=S2.B => edge S2 -> S1.
  EXPECT_TRUE(pg.digraph().HasEdge(1, 0));
  // Scheme on S2.C + predicate S2.C=S3.C => edge S3 -> S2.
  EXPECT_TRUE(pg.digraph().HasEdge(2, 1));
  // Scheme on S3.A + predicate S3.A=S1.A => edge S1 -> S3.
  EXPECT_TRUE(pg.digraph().HasEdge(0, 2));
}

// Corollary 1 on Figure 5: the 3-way join operator is purgeable.
TEST(PunctuationGraphTest, Fig5IsStronglyConnected) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PunctuationGraph pg = PunctuationGraph::Build(q, Fig5Schemes(catalog));
  EXPECT_TRUE(pg.IsStronglyConnected());
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(pg.StatePurgeable(s)) << "stream " << s;
    EXPECT_TRUE(pg.UnreachableFrom(s).empty());
  }
}

// Section 1's motivating failure: punctuations on the wrong attribute
// (bidderid instead of itemid) leave the partner stream unpurgeable.
TEST(PunctuationGraphTest, WrongAttributeSchemeGivesNoEdge) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog
                  .Register("item", Schema::OfInts({"sellerid", "itemid"}))
                  .ok());
  ASSERT_TRUE(catalog
                  .Register("bid", Schema::OfInts({"bidderid", "itemid"}))
                  .ok());
  auto q = ContinuousJoinQuery::Create(
      catalog, {"item", "bid"}, {Eq({"item", "itemid"}, {"bid", "itemid"})});
  ASSERT_TRUE(q.ok());

  SchemeSet wrong;
  ASSERT_TRUE(wrong.Add(SchemeOn(catalog, "bid", {"bidderid"})).ok());
  PunctuationGraph pg = PunctuationGraph::Build(*q, wrong);
  EXPECT_EQ(pg.digraph().num_edges(), 0u);
  EXPECT_FALSE(pg.StatePurgeable(0));

  SchemeSet right;
  ASSERT_TRUE(right.Add(SchemeOn(catalog, "bid", {"itemid"})).ok());
  PunctuationGraph pg2 = PunctuationGraph::Build(*q, right);
  // item -> ... edge item->bid? Scheme on bid.itemid closes what item
  // tuples wait for: edge item -> bid; only the item state purges.
  EXPECT_TRUE(pg2.StatePurgeable(0));
  EXPECT_FALSE(pg2.StatePurgeable(1));
  EXPECT_FALSE(pg2.IsStronglyConnected());
}

// Theorem 1 asymmetry: with the chain query and only a partial scheme
// set, some states purge and others do not.
TEST(PunctuationGraphTest, PartialSchemesPartialPurgeability) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = Fig3Query(catalog);  // S1-B-S2-C-S3 chain
  SchemeSet set;
  ASSERT_TRUE(set.Add(SchemeOn(catalog, "S2", {"B"})).ok());  // S1->S2
  ASSERT_TRUE(set.Add(SchemeOn(catalog, "S3", {"C"})).ok());  // S2->S3
  PunctuationGraph pg = PunctuationGraph::Build(q, set);

  EXPECT_TRUE(pg.StatePurgeable(0));   // S1 reaches S2 reaches S3
  EXPECT_FALSE(pg.StatePurgeable(1));  // S2 cannot reach S1
  EXPECT_FALSE(pg.StatePurgeable(2));
  EXPECT_EQ(pg.UnreachableFrom(1), (std::vector<size_t>{0}));
  EXPECT_EQ(pg.UnreachableFrom(2), (std::vector<size_t>{0, 1}));
}

// Multi-attribute schemes contribute no simple edges (Definition 7
// covers simple schemes; Figure 8's point).
TEST(PunctuationGraphTest, Fig8SimpleGraphNotStronglyConnected) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PunctuationGraph pg = PunctuationGraph::Build(q, Fig8Schemes(catalog));
  // Simple edges only: S2->S1 (S1.B), S1->S2 (S2.B), S3->S2 (S2.C).
  EXPECT_EQ(pg.digraph().num_edges(), 3u);
  EXPECT_TRUE(pg.digraph().HasEdge(1, 0));
  EXPECT_TRUE(pg.digraph().HasEdge(0, 1));
  EXPECT_TRUE(pg.digraph().HasEdge(2, 1));
  EXPECT_FALSE(pg.IsStronglyConnected());
  // S3 is unreachable from S1 and S2 in the simple graph.
  EXPECT_EQ(pg.UnreachableFrom(0), (std::vector<size_t>{2}));
}

TEST(PunctuationGraphTest, ConjunctivePredicatesOneAttrSuffices) {
  // Section 3.1: with S1.A=S2.A AND S1.B=S2.B, a scheme on either S2
  // attribute purges S1's state.
  StreamCatalog catalog;
  ASSERT_TRUE(catalog.Register("L", Schema::OfInts({"A", "B"})).ok());
  ASSERT_TRUE(catalog.Register("R", Schema::OfInts({"A", "B"})).ok());
  auto q = ContinuousJoinQuery::Create(
      catalog, {"L", "R"},
      {Eq({"L", "A"}, {"R", "A"}), Eq({"L", "B"}, {"R", "B"})});
  ASSERT_TRUE(q.ok());
  SchemeSet set;
  ASSERT_TRUE(set.Add(SchemeOn(catalog, "R", {"B"})).ok());
  PunctuationGraph pg = PunctuationGraph::Build(*q, set);
  EXPECT_TRUE(pg.StatePurgeable(0));
  EXPECT_FALSE(pg.StatePurgeable(1));
}

TEST(PunctuationGraphTest, EmptySchemeSetNoEdges) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PunctuationGraph pg = PunctuationGraph::Build(q, SchemeSet());
  EXPECT_EQ(pg.digraph().num_edges(), 0u);
  EXPECT_FALSE(pg.IsStronglyConnected());
}

TEST(PunctuationGraphTest, EdgeProvenanceRecorded) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PunctuationGraph pg = PunctuationGraph::Build(q, Fig5Schemes(catalog));
  ASSERT_EQ(pg.edges().size(), 3u);
  for (const PgEdge& e : pg.edges()) {
    // The punctuatable attribute really is the 'to' side of the
    // predicate.
    const ResolvedPredicate& p = q.predicates()[e.predicate];
    EXPECT_TRUE(p.Involves(e.to));
    EXPECT_EQ(p.AttrOn(e.to), e.punct_attr);
  }
  EXPECT_FALSE(pg.ToString(q).empty());
}

}  // namespace
}  // namespace punctsafe
