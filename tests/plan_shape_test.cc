#include "query/plan_shape.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace punctsafe {
namespace {

TEST(PlanShapeTest, LeafBasics) {
  PlanShape leaf = PlanShape::Leaf(2);
  EXPECT_TRUE(leaf.IsLeaf());
  EXPECT_EQ(leaf.stream(), 2u);
  EXPECT_EQ(leaf.NumOperators(), 0u);
  EXPECT_EQ(leaf.Leaves(), (std::vector<size_t>{2}));
  EXPECT_TRUE(leaf.IsBinaryTree());
}

TEST(PlanShapeTest, SingleMJoin) {
  PlanShape shape = PlanShape::SingleMJoin(3);
  EXPECT_FALSE(shape.IsLeaf());
  EXPECT_EQ(shape.children().size(), 3u);
  EXPECT_EQ(shape.NumOperators(), 1u);
  EXPECT_EQ(shape.Leaves(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_FALSE(shape.IsBinaryTree());
}

TEST(PlanShapeTest, LeftDeepBinary) {
  PlanShape shape = PlanShape::LeftDeepBinary({2, 0, 1});
  EXPECT_EQ(shape.NumOperators(), 2u);
  EXPECT_TRUE(shape.IsBinaryTree());
  EXPECT_EQ(shape.Leaves(), (std::vector<size_t>{0, 1, 2}));
}

TEST(PlanShapeTest, MixedTreeIsNotBinary) {
  PlanShape mixed = PlanShape::Join(
      {PlanShape::Join({PlanShape::Leaf(0), PlanShape::Leaf(1),
                        PlanShape::Leaf(2)}),
       PlanShape::Leaf(3)});
  EXPECT_FALSE(mixed.IsBinaryTree());
  EXPECT_EQ(mixed.NumOperators(), 2u);
  EXPECT_EQ(mixed.Leaves(), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(PlanShapeTest, Equality) {
  EXPECT_EQ(PlanShape::SingleMJoin(3), PlanShape::SingleMJoin(3));
  EXPECT_FALSE(PlanShape::SingleMJoin(3) ==
               PlanShape::LeftDeepBinary({0, 1, 2}));
}

TEST(PlanShapeTest, ToStringRendering) {
  StreamCatalog catalog = testing_util::PaperCatalog();
  ContinuousJoinQuery q = testing_util::TriangleQuery(catalog);
  EXPECT_EQ(PlanShape::SingleMJoin(3).ToString(q), "[S1 S2 S3]");
  EXPECT_EQ(PlanShape::LeftDeepBinary({0, 1, 2}).ToString(q),
            "((S1 JOIN S2) JOIN S3)");
}

}  // namespace
}  // namespace punctsafe
