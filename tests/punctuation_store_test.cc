#include "exec/punctuation_store.h"

#include <gtest/gtest.h>

namespace punctsafe {
namespace {

TEST(PunctuationStoreTest, AddAndDeduplicate) {
  PunctuationStore store;
  Punctuation p = Punctuation::OfConstants(2, {{0, Value(1)}});
  EXPECT_TRUE(store.Add(p, 0));
  EXPECT_FALSE(store.Add(p, 1));  // duplicate refreshes, not stores
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.high_water(), 1u);
}

TEST(PunctuationStoreTest, CoversSubspaceBasics) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(2, {{0, Value(7)}}), 0);
  EXPECT_TRUE(store.CoversSubspace({0}, {Value(7)}, 0));
  EXPECT_FALSE(store.CoversSubspace({0}, {Value(8)}, 0));
  EXPECT_FALSE(store.CoversSubspace({1}, {Value(7)}, 0));
  // Wider subspace covered by the weaker punctuation.
  EXPECT_TRUE(store.CoversSubspace({0, 1}, {Value(7), Value(3)}, 0));
}

TEST(PunctuationStoreTest, MultiAttrPunctuationCoversOnlyExactCombos) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(2, {{0, Value(1)}, {1, Value(2)}}), 0);
  EXPECT_TRUE(store.CoversSubspace({0, 1}, {Value(1), Value(2)}, 0));
  EXPECT_FALSE(store.CoversSubspace({0, 1}, {Value(1), Value(3)}, 0));
  EXPECT_FALSE(store.CoversSubspace({0}, {Value(1)}, 0));
}

TEST(PunctuationStoreTest, MixedSignaturesSearchedTogether) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(3, {{0, Value(1)}}), 0);
  store.Add(Punctuation::OfConstants(3, {{1, Value(2)}, {2, Value(3)}}), 0);
  EXPECT_TRUE(store.CoversSubspace({0, 2}, {Value(1), Value(9)}, 0));
  EXPECT_TRUE(
      store.CoversSubspace({1, 2}, {Value(2), Value(3)}, 0));
  EXPECT_FALSE(store.CoversSubspace({2}, {Value(3)}, 0));
  EXPECT_EQ(store.size(), 2u);
}

// Pins the signature-subset lookup semantics the heterogeneous
// (Tuple-free) probe path must preserve: a stored signature applies to
// a queried subspace iff its constrained attrs are a subset of the
// queried attrs, matching on the projected values in signature order —
// with type-strict value equality throughout.
TEST(PunctuationStoreTest, SignatureSubsetLookup) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(4, {{1, Value("x")}, {3, Value(9)}}), 0);

  // Queried attrs are a strict superset, in an order different from
  // the signature's: the projection must pull the right positions.
  EXPECT_TRUE(store.CoversSubspace({3, 0, 1},
                                   {Value(9), Value(42), Value("x")}, 0));
  // Same attrs, wrong value on one: no cover.
  EXPECT_FALSE(store.CoversSubspace({3, 0, 1},
                                    {Value(8), Value(42), Value("x")}, 0));
  // Missing one signature attr (subset fails): no cover, even though
  // the present value matches.
  EXPECT_FALSE(store.CoversSubspace({3, 0}, {Value(9), Value(42)}, 0));
  // Type-strict: int64 9 stored, double 9.0 queried must not match.
  EXPECT_FALSE(store.CoversSubspace({3, 1}, {Value(9.0), Value("x")}, 0));
  // A string equal by content matches however it was constructed.
  EXPECT_TRUE(store.CoversSubspace(
      {1, 3}, {Value(std::string("x")), Value(9)}, 0));

  // ExcludesTuple uses the same heterogeneous path (projection of the
  // tuple's own values).
  EXPECT_TRUE(store.ExcludesTuple(
      Tuple({Value(0), Value("x"), Value(0), Value(9)}), 0));
  EXPECT_FALSE(store.ExcludesTuple(
      Tuple({Value(0), Value("x"), Value(0), Value(9.0)}), 0));
}

TEST(PunctuationStoreTest, ExcludesTuple) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(2, {{0, Value(5)}}), 0);
  EXPECT_TRUE(store.ExcludesTuple(Tuple({Value(5), Value(1)}), 0));
  EXPECT_FALSE(store.ExcludesTuple(Tuple({Value(6), Value(1)}), 0));
}

TEST(PunctuationStoreTest, LifespanExpiry) {
  PunctuationStore store(/*lifespan=*/10);
  store.Add(Punctuation::OfConstants(1, {{0, Value(1)}}), 0);
  EXPECT_TRUE(store.CoversSubspace({0}, {Value(1)}, 5));
  // Expired at now >= arrival + lifespan.
  EXPECT_FALSE(store.CoversSubspace({0}, {Value(1)}, 10));
  EXPECT_FALSE(store.ExcludesTuple(Tuple({Value(1)}), 12));
  EXPECT_EQ(store.ExpireBefore(12), 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(PunctuationStoreTest, DuplicateRefreshesLifespan) {
  PunctuationStore store(/*lifespan=*/10);
  Punctuation p = Punctuation::OfConstants(1, {{0, Value(1)}});
  store.Add(p, 0);
  store.Add(p, 8);  // refresh
  EXPECT_TRUE(store.CoversSubspace({0}, {Value(1)}, 15));
  EXPECT_FALSE(store.CoversSubspace({0}, {Value(1)}, 18));
}

TEST(PunctuationStoreTest, NoLifespanNeverExpires) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(1, {{0, Value(1)}}), 0);
  EXPECT_EQ(store.ExpireBefore(1'000'000), 0u);
  EXPECT_TRUE(store.CoversSubspace({0}, {Value(1)}, 1'000'000));
}

TEST(PunctuationStoreTest, RemoveIf) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(1, {{0, Value(1)}}), 0);
  store.Add(Punctuation::OfConstants(1, {{0, Value(2)}}), 0);
  size_t removed = store.RemoveIf([](const Punctuation& p) {
    return p.pattern(0).constant() == Value(1);
  });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.CoversSubspace({0}, {Value(1)}, 0));
  EXPECT_TRUE(store.CoversSubspace({0}, {Value(2)}, 0));
}

TEST(PunctuationStoreTest, ForEachVisitsAll) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(1, {{0, Value(1)}}), 0);
  store.Add(Punctuation::OfConstants(1, {{0, Value(2)}}), 0);
  size_t count = 0;
  store.ForEach([&](const Punctuation&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(PunctuationStoreTest, HighWaterSurvivesRemoval) {
  PunctuationStore store;
  store.Add(Punctuation::OfConstants(1, {{0, Value(1)}}), 0);
  store.Add(Punctuation::OfConstants(1, {{0, Value(2)}}), 0);
  store.RemoveIf([](const Punctuation&) { return true; });
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.high_water(), 2u);
}

}  // namespace
}  // namespace punctsafe
