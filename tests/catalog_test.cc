#include "stream/catalog.h"

#include <gtest/gtest.h>

namespace punctsafe {
namespace {

TEST(CatalogTest, RegisterAndGet) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog.Register("s", Schema::OfInts({"a"})).ok());
  EXPECT_TRUE(catalog.Contains("s"));
  auto schema = catalog.Get("s");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->num_attributes(), 1u);
}

TEST(CatalogTest, GetUnknownIsNotFound) {
  StreamCatalog catalog;
  EXPECT_TRUE(catalog.Get("missing").status().IsNotFound());
  EXPECT_FALSE(catalog.Contains("missing"));
}

TEST(CatalogTest, DuplicateNameRejected) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog.Register("s", Schema::OfInts({"a"})).ok());
  EXPECT_TRUE(
      catalog.Register("s", Schema::OfInts({"b"})).IsAlreadyExists());
}

TEST(CatalogTest, EmptyNameRejected) {
  StreamCatalog catalog;
  EXPECT_TRUE(
      catalog.Register("", Schema::OfInts({"a"})).IsInvalidArgument());
}

TEST(CatalogTest, InvalidSchemaRejected) {
  StreamCatalog catalog;
  EXPECT_TRUE(catalog.Register("s", Schema()).IsInvalidArgument());
  EXPECT_FALSE(catalog.Contains("s"));
}

TEST(CatalogTest, NamesPreserveOrder) {
  StreamCatalog catalog;
  ASSERT_TRUE(catalog.Register("b", Schema::OfInts({"x"})).ok());
  ASSERT_TRUE(catalog.Register("a", Schema::OfInts({"x"})).ok());
  EXPECT_EQ(catalog.names(), (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(catalog.size(), 2u);
}

}  // namespace
}  // namespace punctsafe
