#include "server/query_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "server/protocol.h"

namespace punctsafe {
namespace server {
namespace {

Schema ItemSchema() {
  return Schema({{"sellerid", ValueType::kInt64},
                 {"itemid", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"initialprice", ValueType::kInt64}});
}

Schema BidSchema() {
  return Schema({{"bidderid", ValueType::kInt64},
                 {"itemid", ValueType::kInt64},
                 {"increase", ValueType::kInt64}});
}

// The paper's Example 1 join, both streams punctuated on itemid: safe.
constexpr const char* kAuctionSpec =
    "scheme item itemid; scheme bid itemid; query item bid; "
    "join item.itemid = bid.itemid";

// Section 1's unsafe configuration: punctuations only on bidderid.
constexpr const char* kUnsafeSpec =
    "scheme bid bidderid; query item bid; join item.itemid = bid.itemid";

void CreateAuctionStreams(QueryRegistry* registry) {
  ASSERT_TRUE(registry->CreateStream("item", ItemSchema()).ok());
  ASSERT_TRUE(registry->CreateStream("bid", BidSchema()).ok());
}

TEST(QueryRegistryTest, CreateStreamRejectsDuplicates) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.CreateStream("item", ItemSchema()).ok());
  EXPECT_TRUE(
      registry.CreateStream("item", ItemSchema()).IsAlreadyExists());
}

TEST(QueryRegistryTest, RegistersSafeQuery) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  auto info = registry.RegisterQuery("q1", kAuctionSpec);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->id, "q1");
  EXPECT_TRUE(info->safety.safe);
  EXPECT_FALSE(info->plan.empty());
  ASSERT_EQ(info->subjoins.size(), 1u);  // the whole join
  EXPECT_TRUE(info->subjoins[0].safe);
  EXPECT_FALSE(info->subjoins[0].shared_at_registration);
  EXPECT_EQ(info->subjoins[0].sharers, 1u);
  EXPECT_TRUE(registry.HasQuery("q1"));
}

TEST(QueryRegistryTest, RejectsDuplicateQueryId) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  ASSERT_TRUE(registry.RegisterQuery("q1", kAuctionSpec).ok());
  EXPECT_TRUE(
      registry.RegisterQuery("q1", kAuctionSpec).status().IsAlreadyExists());
}

TEST(QueryRegistryTest, RejectsBadQueryIds) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  EXPECT_TRUE(
      registry.RegisterQuery("", kAuctionSpec).status().IsInvalidArgument());
  EXPECT_TRUE(registry.RegisterQuery("a b", kAuctionSpec)
                  .status()
                  .IsInvalidArgument());
}

TEST(QueryRegistryTest, RejectsUnknownStreams) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.CreateStream("item", ItemSchema()).ok());
  auto info = registry.RegisterQuery("q1", kAuctionSpec);
  EXPECT_FALSE(info.ok());
  EXPECT_NE(info.status().message().find("bid"), std::string::npos);
}

TEST(QueryRegistryTest, RejectsSpecsDeclaringStreams) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  auto info = registry.RegisterQuery(
      "q1",
      "stream extra k:int; scheme item itemid; scheme bid itemid; "
      "query item bid; join item.itemid = bid.itemid");
  EXPECT_TRUE(info.status().IsInvalidArgument());
  EXPECT_NE(info.status().message().find("CREATE STREAM"),
            std::string::npos);
}

TEST(QueryRegistryTest, RejectsUnsafeQueryWithWitness) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  auto info = registry.RegisterQuery("q1", kUnsafeSpec);
  ASSERT_TRUE(info.status().IsFailedPrecondition());
  EXPECT_NE(info.status().message().find("UNSAFE"), std::string::npos);
  EXPECT_FALSE(registry.HasQuery("q1"));
}

TEST(QueryRegistryTest, PushesAndTakesResults) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  ASSERT_TRUE(registry.RegisterQuery("q1", kAuctionSpec).ok());

  ASSERT_TRUE(registry
                  .PushTuple("item", Tuple({Value(1), Value(10),
                                            Value("widget"), Value(100)}))
                  .ok());
  ASSERT_TRUE(
      registry.PushTuple("bid", Tuple({Value(7), Value(10), Value(5)}))
          .ok());
  ASSERT_TRUE(registry.DrainAll().ok());

  auto results = registry.TakeResults("q1");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].size(), 7u);  // item ++ bid

  // TakeResults moves out: a second take is empty.
  auto again = registry.TakeResults("q1");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());

  EXPECT_TRUE(registry.TakeResults("nope").status().IsNotFound());
}

TEST(QueryRegistryTest, ValidatesTuplesAndPunctuations) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  ASSERT_TRUE(registry.RegisterQuery("q1", kAuctionSpec).ok());

  EXPECT_TRUE(registry.PushTuple("nope", Tuple({Value(1)}))
                  .IsNotFound());
  // Wrong arity.
  EXPECT_TRUE(registry.PushTuple("bid", Tuple({Value(1)}))
                  .IsInvalidArgument());
  // Wrong type at attribute 2 (name is a string).
  EXPECT_TRUE(registry
                  .PushTuple("item", Tuple({Value(1), Value(2), Value(3),
                                            Value(4)}))
                  .IsInvalidArgument());

  // Punctuation arity / type validation.
  EXPECT_TRUE(
      registry.PushPunctuation("bid", Punctuation::AllWildcard(2))
          .IsInvalidArgument());
  EXPECT_TRUE(registry
                  .PushPunctuation(
                      "bid", Punctuation::OfConstants(3, {{1, Value("x")}}))
                  .IsInvalidArgument());
  EXPECT_TRUE(registry
                  .PushPunctuation(
                      "bid", Punctuation::OfConstants(3, {{1, Value(10)}}))
                  .ok());
}

TEST(QueryRegistryTest, SharesIdenticalSafeSubjoins) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  auto info1 = registry.RegisterQuery("q1", kAuctionSpec);
  ASSERT_TRUE(info1.ok());
  EXPECT_EQ(info1->shared_subjoins, 0u);

  auto info2 = registry.RegisterQuery("q2", kAuctionSpec);
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(info2->shared_subjoins, 1u);
  ASSERT_EQ(info2->subjoins.size(), 1u);
  EXPECT_TRUE(info2->subjoins[0].shared_at_registration);
  EXPECT_EQ(info2->subjoins[0].sharers, 2u);

  // The first query's view reflects the new sharer.
  auto sharing1 = registry.SharingFor("q1");
  ASSERT_TRUE(sharing1.ok());
  ASSERT_EQ(sharing1->size(), 1u);
  EXPECT_EQ((*sharing1)[0].sharers, 2u);
  EXPECT_EQ((*sharing1)[0].signature, info2->subjoins[0].signature);

  // Shared punctuation state advances once per shared store.
  ASSERT_TRUE(registry
                  .PushPunctuation(
                      "bid", Punctuation::OfConstants(3, {{1, Value(10)}}))
                  .ok());
  bool found_subjoin_stat = false;
  for (const auto& [key, value] : registry.Stats()) {
    if (key.rfind("subjoin.", 0) == 0) {
      found_subjoin_stat = true;
      EXPECT_NE(value.find("sharers=2"), std::string::npos) << value;
      EXPECT_NE(value.find("punctuations=1"), std::string::npos) << value;
    }
  }
  EXPECT_TRUE(found_subjoin_stat);

  // Dropping one holder keeps the state alive for the other...
  ASSERT_TRUE(registry.UnregisterQuery("q2").ok());
  auto after = registry.SharingFor("q1");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)[0].sharers, 1u);

  // ...and a re-registration shares it again.
  auto info3 = registry.RegisterQuery("q3", kAuctionSpec);
  ASSERT_TRUE(info3.ok());
  EXPECT_EQ(info3->shared_subjoins, 1u);
}

TEST(QueryRegistryTest, DifferentQueriesDoNotShare) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  ASSERT_TRUE(registry.CreateStream("S1", Schema::OfInts({"A", "B"})).ok());
  ASSERT_TRUE(registry.CreateStream("S2", Schema::OfInts({"B", "C"})).ok());
  ASSERT_TRUE(registry.CreateStream("S3", Schema::OfInts({"C", "A"})).ok());

  ASSERT_TRUE(registry.RegisterQuery("auction", kAuctionSpec).ok());
  auto triangle = registry.RegisterQuery(
      "triangle",
      "scheme S1 B; scheme S2 B; scheme S2 C; scheme S3 C A; "
      "query S1 S2 S3; join S1.B = S2.B; join S2.C = S3.C; "
      "join S3.A = S1.A");
  ASSERT_TRUE(triangle.ok()) << triangle.status().ToString();
  EXPECT_EQ(triangle->shared_subjoins, 0u);
  for (const SubjoinSharing& d : triangle->subjoins) {
    EXPECT_FALSE(d.shared_at_registration);
  }
}

TEST(QueryRegistryTest, ParallelModeProducesSameJoin) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  ExecutorConfig cfg;
  cfg.mode = ExecutionMode::kParallel;
  cfg.shards = 2;
  auto info = registry.RegisterQuery("qp", kAuctionSpec, cfg);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(registry
                    .PushTuple("item", Tuple({Value(i), Value(i), Value("n"),
                                              Value(100 + i)}))
                    .ok());
    ASSERT_TRUE(
        registry.PushTuple("bid", Tuple({Value(i), Value(i), Value(1)}))
            .ok());
  }
  ASSERT_TRUE(registry.DrainAll().ok());
  auto results = registry.TakeResults("qp");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 8u);
}

TEST(QueryRegistryTest, ExplicitTimestampsAdvanceClock) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  ASSERT_TRUE(registry.RegisterQuery("q1", kAuctionSpec).ok());
  ASSERT_TRUE(registry
                  .PushTuple("bid", Tuple({Value(1), Value(1), Value(1)}),
                             100)
                  .ok());
  EXPECT_EQ(registry.clock(), 100);
  // Implicit stamps tick past the watermark.
  ASSERT_TRUE(
      registry.PushTuple("bid", Tuple({Value(2), Value(2), Value(2)}))
          .ok());
  EXPECT_EQ(registry.clock(), 101);
}

TEST(QueryRegistryTest, UnregisterRemovesQuery) {
  QueryRegistry registry;
  CreateAuctionStreams(&registry);
  ASSERT_TRUE(registry.RegisterQuery("q1", kAuctionSpec).ok());
  ASSERT_TRUE(registry.UnregisterQuery("q1").ok());
  EXPECT_FALSE(registry.HasQuery("q1"));
  EXPECT_TRUE(registry.UnregisterQuery("q1").IsNotFound());
  EXPECT_TRUE(registry.QueryIds().empty());
}

// --- Protocol layer (socket-free): the same ProcessLine path the
// --- server drives.

std::vector<std::string> Exec(QueryRegistry* registry, Session* session,
                             const std::string& line) {
  return ProcessLine(registry, session, line);
}

TEST(ProtocolTest, CreateRegisterPushFlow) {
  QueryRegistry registry;
  Session session;
  auto r1 = Exec(&registry, &session,
                "CREATE STREAM item sellerid:int itemid:int name:string "
                "initialprice:int");
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].rfind("OK stream item", 0), 0u) << r1[0];

  auto r2 = Exec(&registry, &session,
                "CREATE STREAM bid bidderid:int itemid:int increase:int");
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].rfind("OK stream bid", 0), 0u);

  auto r3 = Exec(&registry, &session,
                std::string("REGISTER QUERY q1 AS ") + kAuctionSpec);
  ASSERT_EQ(r3.size(), 1u);
  EXPECT_EQ(r3[0].rfind("OK query q1", 0), 0u) << r3[0];

  auto r4 = Exec(&registry, &session, "SUBSCRIBE q1");
  ASSERT_EQ(r4.size(), 1u);
  EXPECT_EQ(r4[0], "OK subscribed q1");
  EXPECT_EQ(session.subscriptions.count("q1"), 1u);

  EXPECT_EQ(Exec(&registry, &session,
                "PUSH item @5 1 10 \"widget\" 100")[0],
            "OK");
  EXPECT_EQ(Exec(&registry, &session, "PUSH bid 7 10 5")[0], "OK");
  EXPECT_EQ(Exec(&registry, &session, "PUNCT bid * 10 *")[0], "OK");
  EXPECT_EQ(Exec(&registry, &session, "DRAIN")[0], "OK drained");

  auto results = registry.TakeResults("q1");
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  std::string line = FormatResultLine("q1", (*results)[0]);
  EXPECT_EQ(line.rfind("RESULT q1 ", 0), 0u);
  EXPECT_NE(line.find("\"widget\""), std::string::npos);
}

TEST(ProtocolTest, ErrorsAreSingleLineWithCode) {
  QueryRegistry registry;
  Session session;
  Exec(&registry, &session,
      "CREATE STREAM item sellerid:int itemid:int name:string "
      "initialprice:int");
  Exec(&registry, &session,
      "CREATE STREAM bid bidderid:int itemid:int increase:int");

  // Unsafe registration: protocol-level FailedPrecondition carrying
  // the safety witness, flattened to one line.
  auto err = Exec(&registry, &session,
                 std::string("REGISTER QUERY bad AS ") + kUnsafeSpec);
  ASSERT_EQ(err.size(), 1u);
  EXPECT_EQ(err[0].rfind("ERR FailedPrecondition: ", 0), 0u) << err[0];
  EXPECT_NE(err[0].find("UNSAFE"), std::string::npos) << err[0];
  EXPECT_EQ(err[0].find('\n'), std::string::npos);

  // Unknown stream.
  auto nf = Exec(&registry, &session, "PUSH nope 1");
  EXPECT_EQ(nf[0].rfind("ERR NotFound", 0), 0u) << nf[0];

  // Malformed values.
  auto bad_val = Exec(&registry, &session, "PUSH bid 1 x 3");
  EXPECT_EQ(bad_val[0].rfind("ERR InvalidArgument", 0), 0u) << bad_val[0];
  auto bad_arity = Exec(&registry, &session, "PUSH bid 1 2");
  EXPECT_EQ(bad_arity[0].rfind("ERR InvalidArgument", 0), 0u);

  // Malformed schema token.
  auto bad_schema = Exec(&registry, &session, "CREATE STREAM s k:float");
  EXPECT_EQ(bad_schema[0].rfind("ERR InvalidArgument", 0), 0u);

  // Duplicate query id.
  Exec(&registry, &session,
      std::string("REGISTER QUERY q1 AS ") + kAuctionSpec);
  auto dup = Exec(&registry, &session,
                 std::string("REGISTER QUERY q1 AS ") + kAuctionSpec);
  EXPECT_EQ(dup[0].rfind("ERR AlreadyExists", 0), 0u) << dup[0];

  // Unknown command.
  auto unk = Exec(&registry, &session, "FROBNICATE");
  EXPECT_EQ(unk[0].rfind("ERR InvalidArgument", 0), 0u);

  // Unknown subscription target.
  auto sub = Exec(&registry, &session, "SUBSCRIBE nope");
  EXPECT_EQ(sub[0].rfind("ERR NotFound", 0), 0u);
}

TEST(ProtocolTest, RegisterWithExecutorOptions) {
  QueryRegistry registry;
  Session session;
  Exec(&registry, &session,
      "CREATE STREAM item sellerid:int itemid:int name:string "
      "initialprice:int");
  Exec(&registry, &session,
      "CREATE STREAM bid bidderid:int itemid:int increase:int");
  auto ok = Exec(&registry, &session,
                std::string("REGISTER QUERY qp WITH mode=parallel shards=2 "
                            "batch=16 AS ") +
                    kAuctionSpec);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].rfind("OK query qp", 0), 0u) << ok[0];

  bool saw_parallel = false;
  for (const auto& [key, value] : registry.Stats()) {
    if (key == "query.qp") {
      saw_parallel = value.find("mode=parallel") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_parallel);

  auto bad = Exec(&registry, &session,
                 std::string("REGISTER QUERY q2 WITH mode=sideways AS ") +
                     kAuctionSpec);
  EXPECT_EQ(bad[0].rfind("ERR InvalidArgument", 0), 0u);
  auto unknown_key = Exec(
      &registry, &session,
      std::string("REGISTER QUERY q2 WITH frobs=3 AS ") + kAuctionSpec);
  EXPECT_EQ(unknown_key[0].rfind("ERR InvalidArgument", 0), 0u);
}

TEST(ProtocolTest, SessionCommands) {
  QueryRegistry registry;
  Session session;
  EXPECT_EQ(Exec(&registry, &session, "PING")[0], "OK pong");
  EXPECT_TRUE(Exec(&registry, &session, "").empty());
  EXPECT_TRUE(Exec(&registry, &session, "   ").empty());

  Exec(&registry, &session,
      "CREATE STREAM item sellerid:int itemid:int name:string "
      "initialprice:int");
  Exec(&registry, &session,
      "CREATE STREAM bid bidderid:int itemid:int increase:int");
  Exec(&registry, &session,
      std::string("REGISTER QUERY q1 AS ") + kAuctionSpec);
  Exec(&registry, &session, "SUBSCRIBE q1");

  // STATS renders key/value lines then OK.
  auto stats = Exec(&registry, &session, "STATS");
  ASSERT_GE(stats.size(), 2u);
  EXPECT_EQ(stats.back(), "OK");
  EXPECT_EQ(stats[0].rfind("STAT ", 0), 0u);

  auto unsub_missing = Exec(&registry, &session, "UNSUBSCRIBE nope");
  EXPECT_EQ(unsub_missing[0].rfind("ERR NotFound", 0), 0u);
  EXPECT_EQ(Exec(&registry, &session, "UNSUBSCRIBE q1")[0],
            "OK unsubscribed q1");

  Exec(&registry, &session, "SUBSCRIBE q1");
  EXPECT_EQ(Exec(&registry, &session, "UNREGISTER q1")[0],
            "OK unregistered q1");
  EXPECT_TRUE(session.subscriptions.empty());
  EXPECT_FALSE(registry.HasQuery("q1"));

  EXPECT_FALSE(session.quit);
  EXPECT_EQ(Exec(&registry, &session, "QUIT")[0], "OK bye");
  EXPECT_TRUE(session.quit);
}

}  // namespace
}  // namespace server
}  // namespace punctsafe
