// Adaptive shard rebalancing: the ShardMap routing table, the greedy
// LPT assignment planner, and the punctuation-aligned migration
// protocol (kMigrate barrier -> capture + merge -> re-split under the
// new map -> kRecheck). The migration scenarios check the executor
// against the serial oracle around forced RebalanceNow / ResizeShards
// calls, including growing into pre-allocated headroom and shrinking
// back — answers and final state must be identical to a run that
// never migrated. tests/rebalance_differential_test.cc drives the
// same protocol over randomized queries and migration points.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "exec/input_manager.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "exec/shard_map.h"
#include "obs/exporter.h"
#include "test_util.h"
#include "util/logging.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using testing_util::SchemeOn;

// ----------------------------------------------------------- ShardMap

TEST(ShardMapTest, BalancedAssignmentMatchesModuloForPow2Shards) {
  // For power-of-two shard counts <= kNumSlots the initial balanced
  // map routes exactly like the old `hash % K` scheme — static
  // sharding's shard assignment is unchanged by the indirection.
  for (size_t k : {1u, 2u, 4u, 8u}) {
    ShardMap map(k);
    EXPECT_EQ(map.num_shards(), k);
    EXPECT_EQ(map.version(), 0u);
    for (uint64_t h : {0ull, 1ull, 63ull, 64ull, 0x9E3779B97F4A7C15ull,
                       0xFFFFFFFFFFFFFFFFull}) {
      EXPECT_EQ(map.ShardOf(h), (h & (ShardMap::kNumSlots - 1)) % k);
      EXPECT_EQ(map.ShardOf(h), ShardMap::SlotOf(h) % k);
    }
  }
}

TEST(ShardMapTest, ApplyValidatesAndBumpsVersion) {
  ShardMap map(2);
  // Wrong length.
  EXPECT_TRUE(map.Apply({0, 1, 0}, 2).IsInvalidArgument());
  // Out-of-range shard id.
  std::vector<uint32_t> bad(ShardMap::kNumSlots, 0);
  bad[7] = 2;
  EXPECT_TRUE(map.Apply(bad, 2).IsInvalidArgument());
  EXPECT_TRUE(map.Apply(ShardMap::BalancedAssignment(2), 0)
                  .IsInvalidArgument());
  // Failed applies leave the map untouched.
  EXPECT_EQ(map.version(), 0u);
  EXPECT_EQ(map.num_shards(), 2u);

  std::vector<uint32_t> all_one(ShardMap::kNumSlots, 1);
  PUNCTSAFE_CHECK_OK(map.Apply(all_one, 3));
  EXPECT_EQ(map.version(), 1u);
  EXPECT_EQ(map.num_shards(), 3u);
  for (size_t slot = 0; slot < ShardMap::kNumSlots; ++slot) {
    EXPECT_EQ(map.shard_of_slot(slot), 1u);
  }
}

TEST(ShardMapTest, ComputeShardAssignmentBalancesSkewedLoad) {
  // One scorching slot plus uniform background: LPT must isolate the
  // hot slot and spread the rest, landing within one background slot
  // of the ideal split.
  std::vector<uint64_t> loads(ShardMap::kNumSlots, 10);
  loads[5] = 10 * (ShardMap::kNumSlots - 1);  // half the total load
  std::vector<uint32_t> assignment = ComputeShardAssignment(loads, 2);
  ASSERT_EQ(assignment.size(), ShardMap::kNumSlots);

  std::vector<uint64_t> shard_load(2, 0);
  std::vector<size_t> shard_slots(2, 0);
  for (size_t slot = 0; slot < loads.size(); ++slot) {
    ASSERT_LT(assignment[slot], 2u);
    shard_load[assignment[slot]] += loads[slot];
    ++shard_slots[assignment[slot]];
  }
  // The hot slot sits alone on its shard; everything else went to the
  // other one.
  EXPECT_EQ(shard_slots[assignment[5]], 1u);
  EXPECT_LE(LoadSkew(shard_load), 1.01);

  // Determinism: same loads, same plan.
  EXPECT_EQ(ComputeShardAssignment(loads, 2), assignment);
}

TEST(ShardMapTest, ComputeShardAssignmentZeroLoadIsRoundishRobin) {
  // No signal: every shard still gets slots (no all-to-shard-0
  // degeneracy), evenly.
  std::vector<uint64_t> loads(ShardMap::kNumSlots, 0);
  std::vector<uint32_t> assignment = ComputeShardAssignment(loads, 4);
  std::vector<size_t> per_shard(4, 0);
  for (uint32_t s : assignment) ++per_shard[s];
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(per_shard[s], ShardMap::kNumSlots / 4);
  }
}

TEST(ShardMapTest, LoadSkew) {
  EXPECT_DOUBLE_EQ(LoadSkew({}), 1.0);
  EXPECT_DOUBLE_EQ(LoadSkew({0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(LoadSkew({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(LoadSkew({30, 10, 10, 10}), 2.0);
  EXPECT_GE(LoadSkew({1, 0, 0, 0}), 3.99);
}

// ------------------------------------------------- migration scenarios

// 3-way chain on a shared key (every predicate in one equivalence
// class -> the single MJoin partitions).
struct ChainFixture {
  StreamCatalog catalog;
  ContinuousJoinQuery query = ContinuousJoinQuery();
  SchemeSet schemes;
};

ChainFixture MakeChain3() {
  ChainFixture fx;
  for (const char* name : {"T0", "T1", "T2"}) {
    PUNCTSAFE_CHECK_OK(fx.catalog.Register(name, Schema::OfInts({"k", "v"})));
    PUNCTSAFE_CHECK_OK(fx.schemes.Add(SchemeOn(fx.catalog, name, {"k"})));
  }
  auto q = ContinuousJoinQuery::Create(
      fx.catalog, {"T0", "T1", "T2"},
      {Eq({"T0", "k"}, {"T1", "k"}), Eq({"T1", "k"}, {"T2", "k"})});
  PUNCTSAFE_CHECK(q.ok()) << q.status().ToString();
  fx.query = std::move(q).ValueOrDie();
  return fx;
}

// Zipf-skewed covering trace over the chain: a stable hot key per
// generation, so routing skew is guaranteed.
Trace SkewedTrace(const ChainFixture& fx, size_t generations) {
  CoveringTraceConfig tconfig;
  tconfig.num_generations = generations;
  tconfig.values_per_generation = 6;
  tconfig.tuples_per_generation = 45;
  tconfig.zipf_s = 1.4;
  tconfig.seed = 11;
  return MakeCoveringTrace(fx.query, fx.schemes, tconfig);
}

struct Observation {
  std::vector<Tuple> results;  // sorted
  size_t live_tuples = 0;
  size_t live_punctuations = 0;
};

Observation SerialOracle(const ChainFixture& fx, const PlanShape& shape,
                         const Trace& trace) {
  ExecutorConfig config;
  config.keep_results = true;
  auto exec = PlanExecutor::Create(fx.query, fx.schemes, shape, config);
  PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  Observation obs;
  obs.results = (*exec)->kept_results();
  std::sort(obs.results.begin(), obs.results.end());
  obs.live_tuples = (*exec)->TotalLiveTuples();
  obs.live_punctuations = (*exec)->TotalLivePunctuations();
  return obs;
}

int64_t MaxTimestamp(const Trace& trace) {
  int64_t max_ts = 0;
  for (const TraceEvent& e : trace) {
    max_ts = std::max(max_ts, e.element.timestamp);
  }
  return max_ts;
}

TEST(RebalanceTest, AutomaticMigrationPreservesAnswersOnSkewedTrace) {
  ChainFixture fx = MakeChain3();
  PlanShape shape = PlanShape::SingleMJoin(3);
  Trace trace = SkewedTrace(fx, 30);
  Observation want = SerialOracle(fx, shape, trace);

  ExecutorConfig config;
  config.keep_results = true;
  config.shards = 4;
  config.batch_size = 32;
  config.rebalance.enabled = true;
  config.rebalance.interval_punctuations = 8;
  config.rebalance.skew_threshold = 1.2;
  config.rebalance.min_routed = 64;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(FeedTraceParallel(exec.ValueOrDie().get(), trace).ok());

  // The zipf trace must actually have tripped the controller.
  EXPECT_GT((*exec)->rebalance_migrations(), 0u);
  EXPECT_GT((*exec)->rebalance_tuples_moved(), 0u);

  std::vector<Tuple> results = (*exec)->kept_results();
  std::sort(results.begin(), results.end());
  EXPECT_EQ(results, want.results);
  EXPECT_EQ((*exec)->TotalLiveTuples(), want.live_tuples);
  EXPECT_EQ((*exec)->TotalLivePunctuations(), want.live_punctuations);

  // The installed map diverged from the balanced initial assignment
  // and the group reports its version.
  auto snaps = (*exec)->GroupSnapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_GT(snaps[0].shard_map_version, 0u);
  EXPECT_EQ(snaps[0].active_shards, 4u);
  ASSERT_EQ(snaps[0].shard_routed.size(), 4u);
  const uint64_t routed_total =
      std::accumulate(snaps[0].shard_routed.begin(),
                      snaps[0].shard_routed.end(), uint64_t{0});
  EXPECT_GT(routed_total, 0u);
  (*exec)->Stop();
}

TEST(RebalanceTest, RebalanceNowRequiresTracking) {
  ChainFixture fx = MakeChain3();
  ExecutorConfig config;
  config.shards = 2;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes,
                                       PlanShape::SingleMJoin(3), config);
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE((*exec)->RebalanceNow(0).IsFailedPrecondition());
  EXPECT_TRUE((*exec)->ResizeShards(2, 0).IsFailedPrecondition());
  (*exec)->Stop();
}

TEST(RebalanceTest, MidStreamForcedMigrationMatchesOracle) {
  ChainFixture fx = MakeChain3();
  PlanShape shape = PlanShape::SingleMJoin(3);
  Trace trace = SkewedTrace(fx, 20);
  Observation want = SerialOracle(fx, shape, trace);

  ExecutorConfig config;
  config.keep_results = true;
  config.shards = 4;
  config.rebalance.enabled = true;
  config.rebalance.interval_punctuations = 0;  // explicit control only
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ParallelExecutor& pe = **exec;

  // Force a migration at several arbitrary mid-stream points.
  const size_t third = trace.size() / 3;
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(pe.Push(trace[i]).ok());
    if (i == third || i == 2 * third) {
      ASSERT_TRUE(pe.RebalanceNow(trace[i].element.timestamp).ok());
    }
  }
  ASSERT_TRUE(pe.Drain(MaxTimestamp(trace) + 1).ok());
  EXPECT_GT(pe.rebalance_migrations(), 0u);

  std::vector<Tuple> results = pe.kept_results();
  std::sort(results.begin(), results.end());
  EXPECT_EQ(results, want.results);
  EXPECT_EQ(pe.TotalLiveTuples(), want.live_tuples);
  EXPECT_EQ(pe.TotalLivePunctuations(), want.live_punctuations);
  pe.Stop();
}

TEST(RebalanceTest, GrowAndShrinkActiveShardSetMidStream) {
  ChainFixture fx = MakeChain3();
  PlanShape shape = PlanShape::SingleMJoin(3);
  Trace trace = SkewedTrace(fx, 20);
  Observation want = SerialOracle(fx, shape, trace);

  ExecutorConfig config;
  config.keep_results = true;
  config.shards = 2;  // start on 2 of 5 allocated workers
  config.rebalance.enabled = true;
  config.rebalance.interval_punctuations = 0;
  config.rebalance.max_shards = 5;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ParallelExecutor& pe = **exec;

  {
    auto snaps = pe.GroupSnapshots();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].num_shards, 5u);    // allocated
    EXPECT_EQ(snaps[0].active_shards, 2u);  // routed-to
  }

  const size_t quarter = trace.size() / 4;
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(pe.Push(trace[i]).ok());
    const int64_t ts = trace[i].element.timestamp;
    if (i == quarter) {
      ASSERT_TRUE(pe.ResizeShards(5, ts).ok());  // grow 2 -> 5
      EXPECT_EQ(pe.GroupSnapshots()[0].active_shards, 5u);
    } else if (i == 3 * quarter) {
      ASSERT_TRUE(pe.ResizeShards(3, ts).ok());  // shrink 5 -> 3
      EXPECT_EQ(pe.GroupSnapshots()[0].active_shards, 3u);
    }
  }
  ASSERT_TRUE(pe.Drain(MaxTimestamp(trace) + 1).ok());
  EXPECT_GE(pe.rebalance_migrations(), 2u);

  std::vector<Tuple> results = pe.kept_results();
  std::sort(results.begin(), results.end());
  EXPECT_EQ(results, want.results);
  EXPECT_EQ(pe.TotalLiveTuples(), want.live_tuples);
  EXPECT_EQ(pe.TotalLivePunctuations(), want.live_punctuations);

  // After the shrink, no tuple may live on the deactivated shards.
  auto snaps = pe.GroupSnapshots();
  ASSERT_EQ(snaps[0].shard_live.size(), 5u);
  EXPECT_EQ(snaps[0].shard_live[3], 0u);
  EXPECT_EQ(snaps[0].shard_live[4], 0u);
  pe.Stop();
}

TEST(RebalanceTest, ResizeToCurrentSizeStillRebalancesSlots) {
  // ResizeShards to the current active count is a forced rebalance:
  // it may move slots (force=true ignores the skew threshold) but
  // never changes the active set.
  ChainFixture fx = MakeChain3();
  PlanShape shape = PlanShape::SingleMJoin(3);
  Trace trace = SkewedTrace(fx, 10);

  ExecutorConfig config;
  config.shards = 4;
  config.rebalance.enabled = true;
  config.rebalance.interval_punctuations = 0;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  ASSERT_TRUE(exec.ok());
  ParallelExecutor& pe = **exec;
  for (size_t i = 0; i < trace.size() / 2; ++i) {
    ASSERT_TRUE(pe.Push(trace[i]).ok());
  }
  ASSERT_TRUE(pe.ResizeShards(4, MaxTimestamp(trace)).ok());
  EXPECT_EQ(pe.GroupSnapshots()[0].active_shards, 4u);
  pe.Stop();
}

TEST(RebalanceTest, ObservabilityCarriesRebalanceMetrics) {
  ChainFixture fx = MakeChain3();
  PlanShape shape = PlanShape::SingleMJoin(3);
  Trace trace = SkewedTrace(fx, 20);

  ExecutorConfig config;
  config.shards = 4;
  config.batch_size = 32;
  config.observe.enabled = true;
  config.rebalance.enabled = true;
  config.rebalance.interval_punctuations = 8;
  config.rebalance.skew_threshold = 1.2;
  config.rebalance.min_routed = 64;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(FeedTraceParallel(exec.ValueOrDie().get(), trace).ok());

  obs::ObsSnapshot snap = (*exec)->ObservabilitySnapshot();
  EXPECT_EQ(snap.rebalance_migrations, (*exec)->rebalance_migrations());
  EXPECT_GT(snap.rebalance_migrations, 0u);
  ASSERT_FALSE(snap.operators.empty());
  bool saw_versioned = false;
  for (const obs::OperatorObsEntry& e : snap.operators) {
    saw_versioned |= e.shard_map_version > 0;
    EXPECT_GE(e.skew, 1.0);
  }
  EXPECT_TRUE(saw_versioned);

  std::string line = obs::RenderJsonLine(snap);
  EXPECT_NE(line.find("\"rebalance_migrations\":"), std::string::npos);
  EXPECT_NE(line.find("\"shard_map_version\":"), std::string::npos);
  EXPECT_NE(line.find("\"skew\":"), std::string::npos);
  (*exec)->Stop();
}

}  // namespace
}  // namespace punctsafe
