#include "plan/cost_model.h"

#include <gtest/gtest.h>

#include "plan/chooser.h"
#include "test_util.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

WorkloadStats UniformStats(size_t n, size_t preds) {
  WorkloadStats stats;
  stats.arrival_rate.assign(n, 100.0);
  stats.punctuation_rate.assign(n, 10.0);
  stats.selectivity.assign(preds, 0.01);
  return stats;
}

TEST(CostModelTest, ValidatesStats) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  CostModel model(q, WorkloadStats{});
  auto cost = model.Estimate(PlanShape::SingleMJoin(3), Fig5Schemes(catalog));
  EXPECT_TRUE(cost.status().IsInvalidArgument());
}

TEST(CostModelTest, PurgeableStateIsBounded) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  WorkloadStats stats = UniformStats(3, 3);
  CostModel model(q, stats);
  auto cost = model.Estimate(PlanShape::SingleMJoin(3), Fig5Schemes(catalog));
  ASSERT_TRUE(cost.ok());
  // state ~ rate / punct-rate per stream = 3 * 100/10 = 30, far below
  // the horizon-scaled unbounded estimate.
  EXPECT_LT(cost->expected_state, 100.0);
  EXPECT_GT(cost->expected_state, 0.0);
}

TEST(CostModelTest, UnpurgeableStateScalesWithHorizon) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  WorkloadStats stats = UniformStats(3, 3);
  stats.horizon = 1e5;
  CostModel model(q, stats);
  auto safe = model.Estimate(PlanShape::SingleMJoin(3), Fig5Schemes(catalog));
  auto unsafe = model.Estimate(PlanShape::SingleMJoin(3), SchemeSet());
  ASSERT_TRUE(safe.ok());
  ASSERT_TRUE(unsafe.ok());
  EXPECT_GT(unsafe->expected_state, 1000 * safe->expected_state);
}

TEST(CostModelTest, LazyPolicyTradesMemoryForSweepWork) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  CostModel model(q, UniformStats(3, 3));
  auto eager = model.Estimate(PlanShape::SingleMJoin(3),
                              Fig5Schemes(catalog), PurgePolicy::kEager);
  auto lazy = model.Estimate(PlanShape::SingleMJoin(3), Fig5Schemes(catalog),
                             PurgePolicy::kLazy, /*lazy_batch=*/64);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  EXPECT_GT(lazy->expected_state, eager->expected_state);
  EXPECT_LT(lazy->work_per_time, eager->work_per_time);
}

TEST(CostModelTest, ScoreObjectives) {
  PlanCost cheap_mem{10, 5, 1000, 1};
  PlanCost cheap_work{1000, 500, 10, 1};
  EXPECT_LT(CostModel::Score(cheap_mem, CostObjective::kMemory),
            CostModel::Score(cheap_work, CostObjective::kMemory));
  EXPECT_GT(CostModel::Score(cheap_mem, CostObjective::kThroughput),
            CostModel::Score(cheap_work, CostObjective::kThroughput));
  EXPECT_FALSE(cheap_mem.ToString().empty());
}

TEST(ChooserTest, ChoosesAmongSafePlans) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PlanChooser chooser(q, Fig8Schemes(catalog), UniformStats(3, 3));
  auto ranked = chooser.Rank(CostObjective::kMemory);
  ASSERT_TRUE(ranked.ok());
  EXPECT_GE(ranked->size(), 2u);
  // Scores ascending.
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_LE((*ranked)[i - 1].score, (*ranked)[i].score);
  }
  auto best = chooser.Choose(CostObjective::kMemory);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->shape, (*ranked)[0].shape);
}

TEST(ChooserTest, UnsafeQueryFailsPrecondition) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  PlanChooser chooser(q, SchemeSet(), UniformStats(3, 3));
  EXPECT_TRUE(chooser.Choose().status().IsFailedPrecondition());
}

}  // namespace
}  // namespace punctsafe
