// Differential oracle for the batched expansion pipeline (frontier
// probing, SIMD verify prefilter, staged batch emission): a serial
// executor at batch_size > 1 must be result-identical — same result
// multiset AND same emission order — to the tuple-at-a-time reference
// (batch_size = 1), which in turn is the per-row ProduceResults path.
// Shapes covered:
//  * join chains of m = 2, 3, 4 inputs (multi-hop frontiers);
//  * the paper's triangle query (a verification predicate on the
//    closing hop, exercising the equal-hash prefilter);
//  * a bushy tree whose inner join has no local predicate (the
//    cross-product fallback of Expand);
//  * sparse and fully-empty selection vectors, produced the way they
//    occur in production: stored punctuations excluding arrivals.
// The sweep also pins the steady-state "no allocation per result"
// property: once the expansion scratch has warmed up, expand_allocs
// stops moving even though results keep flowing.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan_safety.h"
#include "exec/mjoin.h"
#include "exec/plan_executor.h"
#include "exec/tuple_batch.h"
#include "test_util.h"
#include "util/logging.h"

namespace punctsafe {
namespace {

using testing_util::Fig3Query;
using testing_util::Fig5Schemes;
using testing_util::PaperCatalog;
using testing_util::TriangleQuery;

// Batch capacities swept against the batch_size = 1 reference. 7 keeps
// run boundaries misaligned with key runs, 64 is the throughput
// default, 1024 swallows whole streams into one batch.
const size_t kBatchSweep[] = {7, 64, 1024};

struct RunOutput {
  uint64_t num_results = 0;
  std::vector<Tuple> results;  // exact emission sequence
  size_t live_tuples = 0;
  size_t live_punctuations = 0;
  uint64_t inserted = 0;
  uint64_t purged = 0;
  uint64_t dropped = 0;
};

RunOutput RunTrace(const ContinuousJoinQuery& query,
                   const SchemeSet& schemes, const PlanShape& shape,
                   const Trace& trace, size_t batch_size,
                   PurgePolicy policy) {
  ExecutorConfig config;
  config.keep_results = true;
  config.batch_size = batch_size;
  config.mjoin.purge_policy = policy;
  config.mjoin.lazy_batch = 3;
  auto exec = PlanExecutor::Create(query, schemes, shape, config);
  PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
  for (const TraceEvent& e : trace) {
    PUNCTSAFE_CHECK_OK((*exec)->Push(e));
  }
  (*exec)->FlushIngest();

  RunOutput out;
  out.num_results = (*exec)->num_results();
  out.results = (*exec)->kept_results();
  out.live_tuples = (*exec)->TotalLiveTuples();
  out.live_punctuations = (*exec)->TotalLivePunctuations();
  for (const auto& op : (*exec)->operators()) {
    StateMetricsSnapshot s = op->AggregateStateSnapshot();
    out.inserted += s.inserted;
    out.purged += s.purged;
    out.dropped += s.dropped_on_arrival;
  }
  return out;
}

// Exact-sequence equality: batching must be invisible, including the
// order results leave the executor (the emission-order invariant of
// the row-major frontier). Probe/allocation counters are execution-
// strategy artifacts and deliberately not compared.
void ExpectSameRun(const RunOutput& ref, const RunOutput& got) {
  EXPECT_EQ(got.num_results, ref.num_results);
  EXPECT_EQ(got.results, ref.results);
  EXPECT_EQ(got.live_tuples, ref.live_tuples);
  EXPECT_EQ(got.live_punctuations, ref.live_punctuations);
  EXPECT_EQ(got.inserted, ref.inserted);
  EXPECT_EQ(got.purged, ref.purged);
  EXPECT_EQ(got.dropped, ref.dropped);
}

// ---------------------------------------------------------------------------
// Chain fixtures: T1(L,R) -- T2(L,R) -- ... with Tk.R = Tk+1.L.

StreamCatalog ChainCatalog(size_t m) {
  StreamCatalog catalog;
  for (size_t k = 1; k <= m; ++k) {
    PUNCTSAFE_CHECK_OK(catalog.Register("T" + std::to_string(k),
                                        Schema::OfInts({"L", "R"})));
  }
  return catalog;
}

ContinuousJoinQuery ChainQuery(const StreamCatalog& catalog, size_t m) {
  std::vector<std::string> streams;
  std::vector<JoinPredicateSpec> predicates;
  for (size_t k = 1; k <= m; ++k) {
    streams.push_back("T" + std::to_string(k));
    if (k < m) {
      predicates.push_back(Eq({"T" + std::to_string(k), "R"},
                              {"T" + std::to_string(k + 1), "L"}));
    }
  }
  auto q = ContinuousJoinQuery::Create(catalog, streams, predicates);
  PUNCTSAFE_CHECK(q.ok()) << q.status().ToString();
  return std::move(q).ValueOrDie();
}

SchemeSet ChainSchemes(const StreamCatalog& catalog, size_t m) {
  SchemeSet set;
  for (size_t k = 1; k <= m; ++k) {
    const std::string name = "T" + std::to_string(k);
    PUNCTSAFE_CHECK_OK(set.Add(testing_util::SchemeOn(catalog, name, {"L"})));
    PUNCTSAFE_CHECK_OK(set.Add(testing_util::SchemeOn(catalog, name, {"R"})));
  }
  return set;
}

// Generations of key-clustered runs: generation g links the chain via
// the shared keys g*10 + k, with duplicated rows so batches contain
// equal-key runs, plus never-matching noise rows and punctuations
// closing odd generations (so purge interleaves with expansion and
// later same-key arrivals are excluded — sparse selections).
Trace ChainTrace(size_t m, int64_t generations) {
  Trace trace;
  int64_t ts = 0;
  auto key = [](int64_t g, size_t k) { return g * 10 + static_cast<int64_t>(k); };
  for (int64_t g = 0; g < generations; ++g) {
    for (size_t k = 1; k <= m; ++k) {
      const std::string name = "T" + std::to_string(k);
      const int64_t left = (k == 1) ? 7000 + g : key(g, k - 1);
      const int64_t right = (k == m) ? 8000 + g : key(g, k);
      // A run of equal-key rows (the batch path resolves one bucket
      // per run), one singleton, and a noise row matching nothing.
      trace.push_back({name, StreamElement::OfTuple(
                                 Tuple({Value(left), Value(right)}), ts++)});
      trace.push_back({name, StreamElement::OfTuple(
                                 Tuple({Value(left), Value(right)}), ts++)});
      trace.push_back({name, StreamElement::OfTuple(
                                 Tuple({Value(left), Value(right)}), ts++)});
      trace.push_back(
          {name, StreamElement::OfTuple(
                     Tuple({Value(900000 + g), Value(910000 + g)}), ts++)});
    }
    if (g % 2 == 1) {
      for (size_t k = 1; k + 1 <= m; ++k) {
        // Close Tk.R = key(g, k): purges joined state and turns any
        // later arrival with that key into an excluded (dropped) row.
        trace.push_back(
            {"T" + std::to_string(k),
             StreamElement::OfPunctuation(
                 Punctuation({Pattern(), Pattern(Value(key(g, k)))}), ts++)});
      }
      // Late arrivals into the closed generation: excluded on the
      // batch path via selection-vector compaction.
      trace.push_back(
          {"T1", StreamElement::OfTuple(
                     Tuple({Value(7777), Value(key(g, 1))}), ts++)});
      trace.push_back(
          {"T1", StreamElement::OfTuple(
                     Tuple({Value(7778), Value(key(g, 1))}), ts++)});
    }
  }
  return trace;
}

TEST(ExpansionDifferentialTest, ChainBatchSizesMatchTupleAtATime) {
  for (size_t m : {2u, 3u, 4u}) {
    StreamCatalog catalog = ChainCatalog(m);
    ContinuousJoinQuery query = ChainQuery(catalog, m);
    SchemeSet schemes = ChainSchemes(catalog, m);
    PlanShape shape = PlanShape::SingleMJoin(m);
    Trace trace = ChainTrace(m, 8);
    for (PurgePolicy policy : {PurgePolicy::kEager, PurgePolicy::kLazy}) {
      SCOPED_TRACE(::testing::Message()
                   << "m=" << m << " policy=" << static_cast<int>(policy));
      RunOutput ref = RunTrace(query, schemes, shape, trace, 1, policy);
      EXPECT_GT(ref.num_results, 0u);
      EXPECT_GT(ref.dropped, 0u) << "trace never exercised exclusion";
      for (size_t batch_size : kBatchSweep) {
        SCOPED_TRACE(::testing::Message() << "batch_size=" << batch_size);
        ExpectSameRun(ref, RunTrace(query, schemes, shape, trace,
                                    batch_size, policy));
      }
    }
  }
}

// The triangle's closing predicate (S3.A = S1.A) is a verification
// predicate on the last hop: the trace floods it with rows that agree
// on the probe key but mostly disagree on A, so the equal-hash
// prefilter and the exact-equality compaction both do real work.
Trace TriangleVerifyHeavyTrace(int64_t generations) {
  Trace trace;
  int64_t ts = 0;
  for (int64_t g = 0; g < generations; ++g) {
    for (int64_t a = 0; a < 4; ++a) {
      trace.push_back(
          {"S1", StreamElement::OfTuple(Tuple({Value(a), Value(g)}), ts++)});
    }
    trace.push_back({"S2", StreamElement::OfTuple(
                               Tuple({Value(g), Value(g * 100)}), ts++)});
    trace.push_back({"S2", StreamElement::OfTuple(
                               Tuple({Value(g), Value(g * 100)}), ts++)});
    // Same probe key C = g*100, A spread over hits and misses.
    for (int64_t a = 0; a < 6; ++a) {
      trace.push_back({"S3", StreamElement::OfTuple(
                                 Tuple({Value(g * 100), Value(a)}), ts++)});
    }
    if (g % 3 == 2) {
      trace.push_back(
          {"S1", StreamElement::OfPunctuation(
                     Punctuation({Pattern(), Pattern(Value(g))}), ts++)});
      trace.push_back(
          {"S2", StreamElement::OfPunctuation(
                     Punctuation({Pattern(), Pattern(Value(g * 100))}), ts++)});
    }
  }
  return trace;
}

TEST(ExpansionDifferentialTest, TriangleVerifyHeavyMatchesTupleAtATime) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery query = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  PlanShape shape = PlanShape::SingleMJoin(3);
  Trace trace = TriangleVerifyHeavyTrace(9);
  for (PurgePolicy policy : {PurgePolicy::kEager, PurgePolicy::kLazy}) {
    SCOPED_TRACE(::testing::Message() << "policy=" << static_cast<int>(policy));
    RunOutput ref = RunTrace(query, schemes, shape, trace, 1, policy);
    EXPECT_GT(ref.num_results, 0u);
    for (size_t batch_size : kBatchSweep) {
      SCOPED_TRACE(::testing::Message() << "batch_size=" << batch_size);
      ExpectSameRun(ref, RunTrace(query, schemes, shape, trace,
                                  batch_size, policy));
    }
  }
}

// Bushy shape over the Figure 3 chain whose inner join pairs S1 with
// S3 — streams with no predicate between them. The inner operator's
// expansion takes the cross-product fallback every push; the outer
// join then filters via both chain predicates. (The shape is not
// purge-safe, so it runs without purging — the differential contract
// is about results, not state bounds.)
TEST(ExpansionDifferentialTest, CrossProductFallbackMatchesTupleAtATime) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery query = Fig3Query(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  PlanShape shape = PlanShape::Join(
      {PlanShape::Join({PlanShape::Leaf(0), PlanShape::Leaf(2)}),
       PlanShape::Leaf(1)});

  Trace trace;
  int64_t ts = 0;
  for (int64_t g = 0; g < 6; ++g) {
    for (int64_t a = 0; a < 3; ++a) {
      trace.push_back(
          {"S1", StreamElement::OfTuple(Tuple({Value(a), Value(g)}), ts++)});
      trace.push_back({"S3", StreamElement::OfTuple(
                                 Tuple({Value(g * 100), Value(a)}), ts++)});
    }
    trace.push_back({"S2", StreamElement::OfTuple(
                               Tuple({Value(g), Value(g * 100)}), ts++)});
  }

  RunOutput ref =
      RunTrace(query, schemes, shape, trace, 1, PurgePolicy::kNone);
  EXPECT_GT(ref.num_results, 0u);
  for (size_t batch_size : kBatchSweep) {
    SCOPED_TRACE(::testing::Message() << "batch_size=" << batch_size);
    ExpectSameRun(ref, RunTrace(query, schemes, shape, trace, batch_size,
                                PurgePolicy::kNone));
  }
}

// Selection-vector shapes the exclusion filter produces: a batch
// whose every row is excluded (empty selection — the expansion must
// not run at all) and batches with holes (sparse selection seeding
// the frontier). Driven through stored punctuations, as in prod.
TEST(ExpansionDifferentialTest, SparseAndEmptySelectionsMatch) {
  StreamCatalog catalog = ChainCatalog(2);
  ContinuousJoinQuery query = ChainQuery(catalog, 2);
  SchemeSet schemes = ChainSchemes(catalog, 2);
  PlanShape shape = PlanShape::SingleMJoin(2);

  Trace trace;
  int64_t ts = 0;
  trace.push_back({"T2", StreamElement::OfTuple(
                             Tuple({Value(5), Value(50)}), ts++)});
  trace.push_back({"T2", StreamElement::OfTuple(
                             Tuple({Value(6), Value(60)}), ts++)});
  // Close T1.R = 5 before any T1 arrival carries it.
  trace.push_back({"T1", StreamElement::OfPunctuation(
                             Punctuation({Pattern(), Pattern(Value(5))}),
                             ts++)});
  // A full run of excluded rows: at batch_size <= 8 some delivered
  // batch consists only of excluded rows (empty selection).
  for (int64_t i = 0; i < 8; ++i) {
    trace.push_back({"T1", StreamElement::OfTuple(
                               Tuple({Value(100 + i), Value(5)}), ts++)});
  }
  // Interleaved excluded / live rows: sparse selection.
  for (int64_t i = 0; i < 8; ++i) {
    const int64_t r = (i % 2 == 0) ? 5 : 6;
    trace.push_back({"T1", StreamElement::OfTuple(
                               Tuple({Value(200 + i), Value(r)}), ts++)});
  }

  RunOutput ref =
      RunTrace(query, schemes, shape, trace, 1, PurgePolicy::kEager);
  EXPECT_EQ(ref.num_results, 4u);  // the four R=6 rows join once each
  EXPECT_EQ(ref.dropped, 12u);     // 8 + 4 excluded arrivals
  for (size_t batch_size : kBatchSweep) {
    SCOPED_TRACE(::testing::Message() << "batch_size=" << batch_size);
    ExpectSameRun(ref, RunTrace(query, schemes, shape, trace, batch_size,
                                PurgePolicy::kEager));
  }
}

// ---------------------------------------------------------------------------
// Steady-state allocation pin.

std::vector<LocalInput> RawInputs(const ContinuousJoinQuery& q,
                                  const SchemeSet& schemes) {
  std::vector<LocalInput> inputs;
  for (size_t s = 0; s < q.num_streams(); ++s) {
    inputs.push_back({{s}, RawAvailableSchemes(q, schemes, s)});
  }
  return inputs;
}

// Once the expansion scratch (frontier columns, hash/pair columns,
// staged output batch) has grown to the workload's working set,
// further batches reuse it: expand_allocs must stay exactly flat
// while results keep being produced. Inline-width int values keep
// result copying allocation-free as well.
TEST(ExpansionDifferentialTest, ExpandAllocsPinnedAtZeroInSteadyState) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  MJoinConfig config;
  config.purge_policy = PurgePolicy::kNone;
  auto op = MJoinOperator::Create(q, RawInputs(q, schemes), config);
  ASSERT_TRUE(op.ok()) << op.status().ToString();

  uint64_t results = 0;
  (*op)->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) ++results;
  });
  (*op)->SetBatchEmitter([&](TupleBatch& b) { results += b.size(); });

  // One round = the same batch shapes over a round-private key range,
  // so every round triangulates only within itself and each round's
  // frontier working set is identical.
  auto round = [&](int64_t base, int64_t ts) {
    TupleBatch s2(8), s3(8), s1(8);
    for (int64_t i = 0; i < 2; ++i) {
      s2.Append(Tuple({Value(base + 1), Value(base + 2)}), ts++);
    }
    for (int64_t a = 0; a < 3; ++a) {
      s3.Append(Tuple({Value(base + 2), Value(base + 3 + a)}), ts++);
    }
    for (int64_t a = 0; a < 3; ++a) {
      // Runs of the probe key B = base+1; A spans S3 hits and misses.
      s1.Append(Tuple({Value(base + 3 + a), Value(base + 1)}), ts++);
      s1.Append(Tuple({Value(base + 90 + a), Value(base + 1)}), ts++);
    }
    (*op)->PushBatch(1, s2);
    (*op)->PushBatch(2, s3);
    (*op)->PushBatch(0, s1);
  };

  auto expand_allocs = [&] {
    return (*op)->AggregateStateSnapshot().expand_allocs;
  };

  round(0, 0);  // warm-up: the scratch grows here...
  EXPECT_GT(expand_allocs(), 0u);
  EXPECT_GT(results, 0u);

  const uint64_t warmed = expand_allocs();
  const uint64_t results_warmed = results;
  for (int64_t r = 1; r <= 5; ++r) {
    round(r * 1000, r * 100);  // ...and never again.
  }
  EXPECT_GT(results, results_warmed) << "steady-state rounds were inert";
  EXPECT_EQ(expand_allocs(), warmed)
      << "expansion allocated after warm-up (expand_allocs moved)";
}

}  // namespace
}  // namespace punctsafe
