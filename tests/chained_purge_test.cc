#include "core/chained_purge.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using testing_util::Fig5Schemes;
using testing_util::Fig8Schemes;
using testing_util::PaperCatalog;
using testing_util::SchemeOn;
using testing_util::TriangleQuery;

// Section 3.2's motivating chain: to purge a tuple of S1, first close
// S2 on B (values from t itself), then S3 on C (values from the
// joinable tuples in S2).
TEST(ChainedPurgeTest, Fig5ChainFromS1) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto plan = DeriveChainedPurgePlan(q, Fig5Schemes(catalog), 0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->root_stream, 0u);
  ASSERT_EQ(plan->steps.size(), 2u);

  // Every step's sources must already be covered.
  std::set<size_t> covered{0};
  for (const PurgeStep& step : plan->steps) {
    for (const auto& b : step.bindings) {
      EXPECT_TRUE(covered.count(b.source_stream))
          << "step for " << step.target_stream << " uses uncovered source";
    }
    EXPECT_FALSE(covered.count(step.target_stream));
    covered.insert(step.target_stream);
  }
  EXPECT_EQ(covered.size(), 3u);
  EXPECT_FALSE(plan->ToString(q).empty());
}

TEST(ChainedPurgeTest, PlanExistsForEveryStreamWhenStronglyConnected) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes = Fig5Schemes(catalog);
  for (size_t s = 0; s < 3; ++s) {
    auto plan = DeriveChainedPurgePlan(q, schemes, s);
    EXPECT_TRUE(plan.ok()) << "stream " << s;
    EXPECT_EQ(plan->steps.size(), 2u);
  }
}

TEST(ChainedPurgeTest, Fig8GeneralizedStepUsesBothSources) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto plan = DeriveChainedPurgePlan(q, Fig8Schemes(catalog), 0);
  ASSERT_TRUE(plan.ok());
  // The step closing S3 must use the pair scheme with sources S1, S2.
  bool found = false;
  for (const PurgeStep& step : plan->steps) {
    if (step.target_stream != 2) continue;
    found = true;
    EXPECT_EQ(step.bindings.size(), 2u);
    std::set<size_t> sources;
    for (const auto& b : step.bindings) sources.insert(b.source_stream);
    EXPECT_EQ(sources, (std::set<size_t>{0, 1}));
  }
  EXPECT_TRUE(found);
}

TEST(ChainedPurgeTest, FailsWithWitnessWhenUnpurgeable) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  SchemeSet schemes;
  ASSERT_TRUE(schemes.Add(SchemeOn(catalog, "S2", {"B"})).ok());
  // From S1: reach S2 (edge S1->S2); S3 unreachable.
  auto plan = DeriveChainedPurgePlan(q, schemes, 0);
  EXPECT_TRUE(plan.status().IsFailedPrecondition());
  EXPECT_NE(plan.status().message().find("S3"), std::string::npos);
}

TEST(ChainedPurgeTest, OutOfRangeStream) {
  StreamCatalog catalog = PaperCatalog();
  ContinuousJoinQuery q = TriangleQuery(catalog);
  auto plan = DeriveChainedPurgePlan(q, Fig5Schemes(catalog), 9);
  EXPECT_TRUE(plan.status().IsInvalidArgument());
}

// Property: a plan exists iff Theorem 3 says purgeable, and plans are
// always well-ordered (sources covered before use, no duplicate
// targets, all streams covered).
TEST(ChainedPurgeTest, PlansWellFormedOnRandomInstances) {
  for (uint64_t seed = 0; seed < 150; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 5;
    config.multi_attr_prob = 0.4;
    config.seed = seed * 31 + 3;
    auto inst = MakeRandomQuery(config);
    ASSERT_TRUE(inst.ok());
    GeneralizedPunctuationGraph gpg =
        GeneralizedPunctuationGraph::Build(inst->query, inst->schemes);
    for (size_t s = 0; s < inst->query.num_streams(); ++s) {
      auto plan = DeriveChainedPurgePlan(inst->query, gpg, s);
      EXPECT_EQ(plan.ok(), gpg.StatePurgeable(s))
          << "seed=" << seed << " stream=" << s;
      if (!plan.ok()) continue;
      std::set<size_t> covered{s};
      for (const PurgeStep& step : plan->steps) {
        for (const auto& b : step.bindings) {
          EXPECT_TRUE(covered.count(b.source_stream));
        }
        EXPECT_TRUE(covered.insert(step.target_stream).second);
      }
      EXPECT_EQ(covered.size(), inst->query.num_streams());
    }
  }
}

}  // namespace
}  // namespace punctsafe
