// Differential test: the pipelined ParallelExecutor must be
// observationally equivalent to the serial PlanExecutor — at every
// shard count. For random queries (safe and unsafe alike), random plan
// shapes, and random covering traces, both executors must produce the
// identical result multiset, identical final live state (tuples and
// punctuations after sweeping to fixpoint), and remove the same total
// number of tuples (purged + dropped-on-arrival — the split between
// the two can differ because the parallel interleaving may detect
// removability at arrival where the serial order stores first, and
// vice versa). Each trial sweeps shards in {1, 2, 4} crossed with
// arena storage in {off, on} (the serial reference runs arena-off, so
// the sweep also proves the arena changes no answers), and rotates the
// ingest batch size through {1, 7, 64, 1024} — the reference is pinned
// at batch_size=1 (tuple-at-a-time), so the sweep proves batched
// execution changes no answers either; the failure message logs the
// RNG seed, shard count, arena flag, and batch size for replay.
//
// tools/ci.sh runs this suite under both TSan and ASan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/input_manager.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "exec/query_register.h"
#include "test_util.h"
#include "util/logging.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

struct Observation {
  std::vector<Tuple> results;  // sorted
  uint64_t num_results = 0;
  size_t live_tuples = 0;
  size_t live_punctuations = 0;
  uint64_t removed = 0;  // purged + dropped_on_arrival, all inputs
};

int64_t MaxTimestamp(const Trace& trace) {
  int64_t max_ts = 0;
  for (const TraceEvent& e : trace) {
    max_ts = std::max(max_ts, e.element.timestamp);
  }
  return max_ts;
}

uint64_t TotalRemoved(
    const std::vector<std::unique_ptr<MJoinOperator>>& operators) {
  uint64_t removed = 0;
  for (const auto& op : operators) {
    for (size_t i = 0; i < op->num_inputs(); ++i) {
      StateMetricsSnapshot m = op->state_metrics(i).Snapshot();
      removed += m.purged + m.dropped_on_arrival;
    }
  }
  return removed;
}

Observation RunSerial(const RandomQueryInstance& inst, const PlanShape& shape,
                      const Trace& trace, const ExecutorConfig& config) {
  auto exec = PlanExecutor::Create(inst.query, inst.schemes, shape, config);
  PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  // Sweep to fixpoint: one sweep can unlock further removals (smaller
  // states shrink joinable sets), and the fixpoint — unlike any
  // intermediate state — is interleaving-independent.
  int64_t now = MaxTimestamp(trace) + 1;
  size_t prev;
  do {
    prev = (*exec)->TotalLiveTuples();
    (*exec)->SweepAll(now);
  } while ((*exec)->TotalLiveTuples() != prev);

  Observation obs;
  obs.results = (*exec)->kept_results();
  std::sort(obs.results.begin(), obs.results.end());
  obs.num_results = (*exec)->num_results();
  obs.live_tuples = (*exec)->TotalLiveTuples();
  obs.live_punctuations = (*exec)->TotalLivePunctuations();
  obs.removed = TotalRemoved((*exec)->operators());
  return obs;
}

Observation RunParallel(const RandomQueryInstance& inst,
                        const PlanShape& shape, const Trace& trace,
                        const ExecutorConfig& config) {
  auto exec =
      ParallelExecutor::Create(inst.query, inst.schemes, shape, config);
  PUNCTSAFE_CHECK(exec.ok()) << exec.status().ToString();
  for (const TraceEvent& e : trace) {
    PUNCTSAFE_CHECK_OK((*exec)->Push(e));
  }
  int64_t now = MaxTimestamp(trace) + 1;
  PUNCTSAFE_CHECK_OK((*exec)->Drain(now));
  size_t prev;
  do {
    prev = (*exec)->TotalLiveTuples();
    PUNCTSAFE_CHECK_OK((*exec)->Drain(now));
  } while ((*exec)->TotalLiveTuples() != prev);

  Observation obs;
  obs.results = (*exec)->kept_results();
  std::sort(obs.results.begin(), obs.results.end());
  obs.num_results = (*exec)->num_results();
  obs.live_tuples = (*exec)->TotalLiveTuples();
  obs.live_punctuations = (*exec)->TotalLivePunctuations();
  obs.removed = TotalRemoved((*exec)->operators());
  (*exec)->Stop();
  return obs;
}

// Random shape for the trial: alternate between the single MJoin and
// a left-deep binary chain (maximum pipeline depth).
PlanShape ShapeForTrial(size_t num_streams, uint64_t seed) {
  if (seed % 2 == 0 || num_streams < 3) {
    return PlanShape::SingleMJoin(num_streams);
  }
  std::vector<size_t> order(num_streams);
  for (size_t i = 0; i < num_streams; ++i) order[i] = i;
  return PlanShape::LeftDeepBinary(order);
}

TEST(ParallelDifferentialTest, HundredRandomTrialsMatchSerialExecutor) {
  // Replay a failing trial with PUNCTSAFE_TEST_SEED=<seed from the
  // failure message> (the run then starts at that seed).
  const uint64_t base_seed = testing_util::TestBaseSeed(0);
  for (uint64_t trial = 0; trial < 100; ++trial) {
    const uint64_t seed = base_seed + trial;
    RandomQueryConfig qconfig;
    qconfig.num_streams = 2 + seed % 4;
    qconfig.attrs_per_stream = 2;
    qconfig.extra_predicates = seed % 2;
    qconfig.multi_attr_prob = 0.25;
    qconfig.schemeless_prob = 0.15;
    qconfig.seed = seed * 41 + 3;
    auto inst = MakeRandomQuery(qconfig);
    ASSERT_TRUE(inst.ok()) << inst.status().ToString();

    CoveringTraceConfig tconfig;
    tconfig.num_generations = 5;
    tconfig.values_per_generation = 3;
    tconfig.tuples_per_generation = 12;
    tconfig.seed = seed;
    Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);

    PlanShape shape = ShapeForTrial(inst->query.num_streams(), seed);
    ExecutorConfig config;
    config.keep_results = true;
    config.mjoin.purge_policy =
        (seed % 3 == 2) ? PurgePolicy::kLazy : PurgePolicy::kEager;
    config.mjoin.lazy_batch = 4;
    config.queue_capacity = 1 + seed % 64;  // exercise tight backpressure

    // Rotated per trial: batched ingest must be answer-preserving at
    // every granularity (1 = today's tuple-at-a-time path, bit for
    // bit; 1024 = whole generations travel as one batch).
    const size_t kBatchSizes[] = {1, 7, 64, 1024};
    const size_t batch_size = kBatchSizes[trial % 4];

    // The reference runs serial with per-tuple heap storage and
    // tuple-at-a-time delivery — the simplest configuration, against
    // which the arena, the batched ingest path, and every parallel
    // interleaving must be observationally identical.
    config.arena = false;
    config.batch_size = 1;
    Observation serial = RunSerial(*inst, shape, trace, config);

    // The serial executor with arena storage + batching must agree.
    config.arena = true;
    config.batch_size = batch_size;
    Observation serial_arena = RunSerial(*inst, shape, trace, config);
    {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " serial arena=on batch="
                   << batch_size << " query=" << inst->query.ToString());
      ASSERT_EQ(serial_arena.results, serial.results)
          << "result multiset diverged";
      EXPECT_EQ(serial_arena.live_tuples, serial.live_tuples);
      EXPECT_EQ(serial_arena.live_punctuations, serial.live_punctuations);
      EXPECT_EQ(serial_arena.removed, serial.removed);
    }

    // Every (arena, shard count) pair must reproduce the serial answer
    // exactly — storage backend and partitioning are implementation
    // details, not semantics knobs. (Operators whose predicates don't
    // admit an exact partitioning silently fall back to one shard, so
    // this also covers mixed partitioned/unpartitioned plans.)
    for (bool arena : {false, true}) {
      for (size_t shards : {1u, 2u, 4u}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " shards=" << shards
                     << " arena=" << (arena ? "on" : "off")
                     << " batch=" << batch_size << " query="
                     << inst->query.ToString()
                     << " shape=" << shape.ToString(inst->query));
        config.shards = shards;
        config.arena = arena;
        config.batch_size = batch_size;
        Observation parallel = RunParallel(*inst, shape, trace, config);

        ASSERT_EQ(parallel.results, serial.results)
            << "result multiset diverged";
        EXPECT_EQ(parallel.num_results, serial.num_results);
        EXPECT_EQ(parallel.live_tuples, serial.live_tuples)
            << "final live state diverged";
        EXPECT_EQ(parallel.live_punctuations, serial.live_punctuations)
            << "final punctuation state diverged";
        EXPECT_EQ(parallel.removed, serial.removed)
            << "total purge count diverged";
      }
    }
  }
}

// The ExecutorConfig knob: QueryRegister admits the same query into
// either runtime, and both produce the same answers.
TEST(ParallelDifferentialTest, QueryRegisterModeKnob) {
  auto make_register = [](QueryRegister* reg) {
    PUNCTSAFE_CHECK_OK(reg->RegisterStream("L", Schema::OfInts({"a", "k"})));
    PUNCTSAFE_CHECK_OK(reg->RegisterStream("R", Schema::OfInts({"k", "b"})));
    PUNCTSAFE_CHECK_OK(reg->RegisterScheme("L", {"k"}));
    PUNCTSAFE_CHECK_OK(reg->RegisterScheme("R", {"k"}));
  };
  Trace trace;
  for (int64_t i = 0; i < 50; ++i) {
    trace.push_back({"L", StreamElement::OfTuple(
                              Tuple({Value(i), Value(i % 10)}), i)});
    trace.push_back({"R", StreamElement::OfTuple(
                              Tuple({Value(i % 10), Value(i)}), i)});
  }

  QueryRegister serial_reg;
  make_register(&serial_reg);
  ExecutorConfig serial_config;
  serial_config.keep_results = true;
  auto serial = serial_reg.Register({"L", "R"}, {Eq({"L", "k"}, {"R", "k"})},
                                    serial_config);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_FALSE(serial->is_parallel());
  ASSERT_NE(serial->executor, nullptr);
  for (const TraceEvent& e : trace) {
    ASSERT_TRUE(serial->executor->Push(e).ok());
  }

  QueryRegister parallel_reg;
  make_register(&parallel_reg);
  ExecutorConfig parallel_config;
  parallel_config.keep_results = true;
  parallel_config.mode = ExecutionMode::kParallel;
  parallel_config.queue_capacity = 8;
  parallel_config.shards = 4;  // a partitionable equi-join: 4-way sharded
  auto parallel = parallel_reg.Register(
      {"L", "R"}, {Eq({"L", "k"}, {"R", "k"})}, parallel_config);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_TRUE(parallel->is_parallel());
  ASSERT_EQ(parallel->executor, nullptr);
  for (const TraceEvent& e : trace) {
    ASSERT_TRUE(parallel->parallel_executor->Push(e).ok());
  }
  ASSERT_TRUE(parallel->parallel_executor->Drain(100).ok());

  std::vector<Tuple> serial_results = serial->executor->kept_results();
  std::vector<Tuple> parallel_results =
      parallel->parallel_executor->kept_results();
  std::sort(serial_results.begin(), serial_results.end());
  std::sort(parallel_results.begin(), parallel_results.end());
  EXPECT_GT(serial_results.size(), 0u);
  EXPECT_EQ(parallel_results, serial_results);
}

// Shutdown robustness: destroying a busy executor (no Drain) must not
// hang or crash, even with a tiny queue keeping producers blocked.
TEST(ParallelDifferentialTest, StopWhileBusyDoesNotHang) {
  RandomQueryConfig qconfig;
  qconfig.num_streams = 3;
  qconfig.seed = 7;
  qconfig.schemeless_prob = 0.0;
  auto inst = MakeRandomQuery(qconfig);
  ASSERT_TRUE(inst.ok());

  CoveringTraceConfig tconfig;
  tconfig.num_generations = 10;
  tconfig.tuples_per_generation = 40;
  Trace trace = MakeCoveringTrace(inst->query, inst->schemes, tconfig);

  ExecutorConfig config;
  config.queue_capacity = 1;
  std::vector<size_t> order = {0, 1, 2};
  auto exec = ParallelExecutor::Create(inst->query, inst->schemes,
                                       PlanShape::LeftDeepBinary(order),
                                       config);
  ASSERT_TRUE(exec.ok());
  for (size_t i = 0; i < trace.size() / 2; ++i) {
    ASSERT_TRUE((*exec)->Push(trace[i]).ok());
  }
  (*exec)->Stop();  // mid-flight, queues still loaded
  EXPECT_FALSE((*exec)->Push(trace[0]).ok());
  EXPECT_TRUE((*exec)->Drain(0).IsFailedPrecondition());
}

}  // namespace
}  // namespace punctsafe
