// Experiment E9 (paper Section 5.2, Plan Parameter II, after [Ding et
// al. 2004]): eager vs lazy runtime purge. Eager sweeps on every
// punctuation — minimal memory, maximal sweep work; lazy batches
// sweeps — higher state high-water, better throughput (items/s). The
// batch-size sweep shows the knob's whole range; kNone is the
// memory-unbounded extreme.

#include "bench_util.h"
#include "workload/auction.h"

namespace punctsafe {
namespace {

void BM_PurgeStrategy(benchmark::State& state) {
  AuctionConfig config;
  config.num_items = 2000;
  config.bids_per_item = 8;
  config.max_open = 48;
  Trace trace = AuctionWorkload::Generate(config);

  QueryRegister reg;
  PUNCTSAFE_CHECK_OK(AuctionWorkload::Setup(&reg));
  auto q = ContinuousJoinQuery::Create(reg.catalog(),
                                       AuctionWorkload::QueryStreams(),
                                       AuctionWorkload::QueryPredicates());
  PUNCTSAFE_CHECK_OK(q.status());

  ExecutorConfig exec_config;
  int64_t mode = state.range(0);
  if (mode == 0) {
    exec_config.mjoin.purge_policy = PurgePolicy::kEager;
  } else if (mode < 0) {
    exec_config.mjoin.purge_policy = PurgePolicy::kNone;
  } else {
    exec_config.mjoin.purge_policy = PurgePolicy::kLazy;
    exec_config.mjoin.lazy_batch = static_cast<size_t>(mode);
  }
  bench::RunTraceAndRecord(*q, reg.schemes(), PlanShape::SingleMJoin(2),
                           trace, exec_config, state);
}
// 0 = eager, >0 = lazy batch size, -1 = never purge.
BENCHMARK(BM_PurgeStrategy)
    ->ArgName("mode")
    ->Arg(0)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Arg(-1);

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
