// Experiment E11 (Definitions 1-5, the paper's core promise): the
// compile-time verdict predicts runtime memory across random queries.
// One safe and one unsafe randomized instance run covering traces of
// growing length: the safe query's state_hw stays flat while the
// unsafe query's final_live grows linearly — with identical
// punctuation effort.

#include "bench_util.h"
#include "core/safety_checker.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

// Deterministically finds the first random instance with the desired
// verdict.
RandomQueryInstance FindInstance(bool want_safe) {
  for (uint64_t seed = 0;; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 4;
    config.attrs_per_stream = 2;
    config.extra_predicates = 1;
    config.multi_attr_prob = 0.3;
    config.schemeless_prob = want_safe ? 0.0 : 0.6;
    config.seed = seed * 53 + 1;
    auto inst = MakeRandomQuery(config);
    PUNCTSAFE_CHECK_OK(inst.status());
    SafetyChecker checker(inst->schemes);
    auto report = checker.CheckQuery(inst->query);
    PUNCTSAFE_CHECK_OK(report.status());
    if (report->safe == want_safe) return std::move(inst).ValueOrDie();
  }
}

void RunGrowth(benchmark::State& state, bool safe_instance) {
  RandomQueryInstance inst = FindInstance(safe_instance);
  CoveringTraceConfig tconfig;
  tconfig.num_generations = static_cast<size_t>(state.range(0));
  tconfig.values_per_generation = 3;
  tconfig.tuples_per_generation = 20;
  Trace trace = MakeCoveringTrace(inst.query, inst.schemes, tconfig);
  PlanShape shape = PlanShape::SingleMJoin(inst.query.num_streams());
  bench::RunTraceAndRecord(inst.query, inst.schemes, shape, trace, {}, state);
  // One pipelined pass on the same trace: the safety verdict must
  // predict (non-)growth for the concurrent runtime too —
  // parallel_state_hw stays flat exactly when state_hw does.
  bench::RecordParallelCounters(inst.query, inst.schemes, shape, trace, {},
                                state);
  state.counters["verdict_safe"] = safe_instance ? 1 : 0;
}

void BM_SafeQueryGrowth(benchmark::State& state) { RunGrowth(state, true); }
BENCHMARK(BM_SafeQueryGrowth)->ArgName("generations")->Arg(10)->Arg(40)->Arg(160);

void BM_UnsafeQueryGrowth(benchmark::State& state) {
  RunGrowth(state, false);
}
BENCHMARK(BM_UnsafeQueryGrowth)
    ->ArgName("generations")
    ->Arg(10)
    ->Arg(40)
    ->Arg(160);

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
