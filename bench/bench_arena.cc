// Arena-storage microbenchmarks: epoch-reclaimed arena vs per-tuple
// heap ownership, on the insert path and on the interleaved
// insert+purge cycle that punctuation-driven execution actually runs.
//
// Rows carry a string payload past Value's inline capacity, so heap
// mode pays one vector plus one string allocation per insert while
// arena mode bump-allocates both into the same block. The interleaved
// section runs whole insert/purge/epoch rounds — the arena's headline
// case, where a purge sweep retires blocks wholesale through the free
// list instead of freeing tuples one by one. The binary CHECKs the
// steady-state property (insert_allocs stops growing once the block
// working set exists) and that arena-on/off end-to-end runs produce
// identical result counts.
//
// Emits one JSON object (checked-in baseline: BENCH_arena.json,
// experiment E17 in EXPERIMENTS.md). With --baseline FILE it exits
// non-zero if a tracked micro rate fell below the gate floor
// (--min-ratio, else PUNCTSAFE_BENCH_MIN_RATIO, else 0.75; a failing
// gate prints the ratio table) — the CI regression gate (tools/ci.sh,
// bench-smoke config).
//
// Usage: bench_arena [--rows N] [--keys K] [--rounds R]
//                    [--generations G] [--iters I]
//                    [--baseline FILE] [--min-ratio R]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/plan_executor.h"
#include "exec/tuple_store.h"
#include "util/logging.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<Tuple> MakeRows(size_t n, size_t keys) {
  // An int64 join key, a string payload past the inline cap (external
  // bytes in arena mode, a heap string otherwise), and a row id.
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Tuple({Value(static_cast<int64_t>(i % keys)),
                          Value("payload-string-well-past-inline-cap-" +
                                std::to_string(i % keys)),
                          Value(static_cast<int64_t>(i))}));
  }
  return rows;
}

struct MicroResult {
  double insert_ps = 0;       // inserts/sec (single fill)
  double interleaved_ps = 0;  // insert+purge ops/sec over full rounds
  uint64_t steady_allocs = 0; // insert_allocs growth after warmup round
  uint64_t blocks_reclaimed = 0;
  size_t bytes_reserved = 0;
  uint64_t checksum = 0;
};

MicroResult RunMicro(const std::vector<Tuple>& rows, size_t rounds,
                     bool arena) {
  MicroResult r;
  TupleStoreOptions options{.arena = arena};

  // Insert throughput: one cold fill.
  {
    TupleStore store({0}, options);
    auto start = Clock::now();
    for (const Tuple& t : rows) store.Insert(t);
    double secs = SecondsSince(start);
    r.insert_ps = secs > 0 ? rows.size() / secs : 0;
    r.checksum += store.live_count();
  }

  // Interleaved insert+purge+epoch rounds — the punctuated-stream
  // shape: a generation arrives, a punctuation retires it wholesale.
  {
    TupleStore store({0}, options);
    std::vector<size_t> slots;
    slots.reserve(rows.size());
    // Warmup round builds the arena's block working set.
    for (const Tuple& t : rows) slots.push_back(store.Insert(t));
    store.PurgeSlots(slots);
    store.AdvanceEpoch();
    uint64_t allocs_after_warmup = store.metrics().Snapshot().insert_allocs;

    auto start = Clock::now();
    size_t ops = 0;
    for (size_t round = 0; round < rounds; ++round) {
      slots.clear();
      for (const Tuple& t : rows) slots.push_back(store.Insert(t));
      store.PurgeSlots(slots);
      store.AdvanceEpoch();
      ops += 2 * rows.size();
    }
    double secs = SecondsSince(start);
    r.interleaved_ps = secs > 0 ? ops / secs : 0;

    StateMetricsSnapshot snap = store.metrics().Snapshot();
    r.steady_allocs = snap.insert_allocs - allocs_after_warmup;
    r.blocks_reclaimed = snap.arena_blocks_reclaimed;
    r.bytes_reserved = snap.arena_bytes_reserved;
    r.checksum += store.live_count();
  }
  return r;
}

// ----------------------------------------------------------- end-to-end

struct RunStats {
  double seconds = 0;
  uint64_t results = 0;
};

RunStats RunEndToEnd(const bench::ChainFixture& fx, const PlanShape& shape,
                     const Trace& trace, bool arena) {
  ExecutorConfig config;
  config.arena = arena;
  auto exec = PlanExecutor::Create(fx.query, fx.schemes, shape, config);
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  RunStats stats;
  stats.seconds = SecondsSince(start);
  stats.results = (*exec)->num_results();
  return stats;
}

template <typename Fn>
RunStats Best(size_t iters, const Fn& run) {
  RunStats best;
  for (size_t i = 0; i < iters; ++i) {
    RunStats stats = run();
    if (i == 0 || stats.seconds < best.seconds) best = stats;
  }
  return best;
}

}  // namespace

int Main(int argc, char** argv) {
  size_t rows_n = 20000;
  size_t keys = 512;
  size_t rounds = 8;
  size_t generations = 150;
  size_t iters = 3;
  std::string baseline_path;
  double min_ratio = -1;  // resolved below: flag > env > 0.75
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--rows") == 0) {
      rows_n = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--keys") == 0) {
      keys = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      rounds = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--generations") == 0) {
      generations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--min-ratio") == 0) {
      min_ratio = std::strtod(argv[i + 1], nullptr);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'; flags: --rows N --keys N --rounds N "
                   "--generations N --iters N --baseline FILE "
                   "--min-ratio R\n",
                   argv[i]);
      return 2;
    }
  }

  std::vector<Tuple> rows = MakeRows(rows_n, keys);
  MicroResult heap;
  MicroResult arena;
  // Best-of-iters per mode, interleaved to spread thermal/clock drift.
  for (size_t i = 0; i < iters; ++i) {
    MicroResult h = RunMicro(rows, rounds, /*arena=*/false);
    MicroResult a = RunMicro(rows, rounds, /*arena=*/true);
    if (i == 0 || h.interleaved_ps > heap.interleaved_ps) heap = h;
    if (i == 0 || a.interleaved_ps > arena.interleaved_ps) arena = a;
  }

  // The headline steady-state property is a hard invariant, not a
  // throughput number: after the warmup round, arena inserts must
  // never hit the system allocator.
  PUNCTSAFE_CHECK(arena.steady_allocs == 0)
      << "arena steady state allocated " << arena.steady_allocs
      << " blocks after warmup";
  PUNCTSAFE_CHECK(arena.blocks_reclaimed > 0)
      << "interleaved purge rounds reclaimed no blocks";

  bench::ChainFixture fx = bench::MakeChain(3);
  PlanShape shape = PlanShape::SingleMJoin(3);
  CoveringTraceConfig tconfig;
  tconfig.num_generations = generations;
  tconfig.values_per_generation = 8;
  tconfig.tuples_per_generation = 60;
  Trace trace = MakeCoveringTrace(fx.query, fx.schemes, tconfig);

  RunStats e2e_heap =
      Best(iters, [&] { return RunEndToEnd(fx, shape, trace, false); });
  RunStats e2e_arena =
      Best(iters, [&] { return RunEndToEnd(fx, shape, trace, true); });
  PUNCTSAFE_CHECK(e2e_heap.results == e2e_arena.results)
      << "storage modes disagree: heap=" << e2e_heap.results
      << " arena=" << e2e_arena.results;

  double speedup = heap.interleaved_ps > 0
                       ? arena.interleaved_ps / heap.interleaved_ps
                       : 0;

  std::ostringstream json;
  char buf[256];
  auto emit = [&](const char* key, double v, bool comma = true) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.0f%s\n", key, v,
                  comma ? "," : "");
    json << buf;
  };
  json << "{\n";
  json << "  \"bench\": \"arena\",\n";
  json << "  \"rows\": " << rows_n << ",\n";
  json << "  \"keys\": " << keys << ",\n";
  json << "  \"rounds\": " << rounds << ",\n";
  json << "  \"events\": " << trace.size() << ",\n";
  json << "  \"hardware_threads\": " << bench::HardwareThreads()
       << ",\n";
  emit("heap_insert_per_sec", heap.insert_ps);
  emit("arena_insert_per_sec", arena.insert_ps);
  emit("heap_interleaved_ops_per_sec", heap.interleaved_ps);
  emit("arena_interleaved_ops_per_sec", arena.interleaved_ps);
  std::snprintf(buf, sizeof(buf),
                "  \"arena_interleaved_speedup\": %.2f,\n", speedup);
  json << buf;
  json << "  \"arena_steady_state_insert_allocs\": "
       << arena.steady_allocs << ",\n";
  json << "  \"arena_blocks_reclaimed\": " << arena.blocks_reclaimed
       << ",\n";
  json << "  \"arena_bytes_reserved\": " << arena.bytes_reserved << ",\n";
  emit("heap_e2e_events_per_sec",
       e2e_heap.seconds > 0 ? trace.size() / e2e_heap.seconds : 0);
  emit("arena_e2e_events_per_sec",
       e2e_arena.seconds > 0 ? trace.size() / e2e_arena.seconds : 0);
  std::snprintf(buf, sizeof(buf), "  \"results\": %llu,\n",
                static_cast<unsigned long long>(e2e_arena.results));
  json << buf;
  std::snprintf(buf, sizeof(buf), "  \"checksum\": %llu\n",
                static_cast<unsigned long long>(heap.checksum +
                                                arena.checksum));
  json << buf;
  json << "}\n";
  std::fputs(json.str().c_str(), stdout);

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    // Gate on the arena micro rates (stable across runs); end-to-end
    // numbers are informational — they move with scheduler noise.
    if (!bench::CheckBaselineRates(
            ss.str(),
            {{"arena_insert_per_sec", arena.insert_ps},
             {"arena_interleaved_ops_per_sec", arena.interleaved_ps}},
            bench::ResolveMinRatio(min_ratio))) {
      return 1;
    }
  }
  return 0;
}

}  // namespace punctsafe

int main(int argc, char** argv) { return punctsafe::Main(argc, argv); }
