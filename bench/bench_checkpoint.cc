// Checkpoint-layer benchmarks: how long a punctuation-aligned
// snapshot pauses the pipeline, and how fast the PSCK codec and the
// restore path run (docs/RECOVERY.md).
//
// Four measured sections on a 3-way chain join mid-trace (live tuples,
// punctuations, and pending propagations all non-empty at the cut):
// serial capture (the pure pause: walk + canonicalize), parallel
// capture (adds the checkpoint barrier handshake across shards),
// serialize/deserialize throughput over the snapshot bytes, and
// restore latency into a fresh executor. The binary hard-CHECKs
// recovery correctness on every run: kill-at-cut + restore + replay
// must reproduce the uninterrupted run's result count in both
// execution modes, and split -> merge must reproduce the snapshot
// byte-for-byte.
//
// Emits one JSON object (checked-in baseline: BENCH_checkpoint.json).
// With --baseline FILE it exits non-zero if a tracked rate fell below
// the gate floor (--min-ratio, else PUNCTSAFE_BENCH_MIN_RATIO, else
// 0.75) — the snapshot-pause regression gate in tools/ci.sh. The
// parallel capture rate is reported but not gated: on starved CI
// machines the barrier handshake is scheduler noise, not checkpoint
// cost.
//
// Usage: bench_checkpoint [--generations N] [--shards K] [--iters I]
//                         [--baseline FILE] [--min-ratio R]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/checkpoint.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "util/logging.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int64_t MaxTimestamp(const Trace& trace) {
  int64_t max_ts = 0;
  for (const TraceEvent& e : trace) {
    max_ts = std::max(max_ts, e.element.timestamp);
  }
  return max_ts;
}

uint64_t DrainedResults(ParallelExecutor* exec, int64_t now) {
  size_t prev;
  do {
    prev = exec->TotalLiveTuples();
    PUNCTSAFE_CHECK_OK(exec->Drain(now));
  } while (exec->TotalLiveTuples() != prev);
  return exec->num_results();
}

struct Rates {
  double serial_capture_ps = 0;    // Checkpoint() calls/sec, serial
  double parallel_capture_ps = 0;  // Checkpoint(now) calls/sec, barrier incl.
  double serialize_bps = 0;        // bytes/sec through SerializeSnapshot
  double deserialize_bps = 0;      // bytes/sec through DeserializeSnapshot
  double restore_ps = 0;           // RestoreState() calls/sec, serial
  size_t snapshot_bytes = 0;
};

}  // namespace

int Main(int argc, char** argv) {
  size_t generations = 60;
  size_t shards = 2;
  size_t iters = 3;
  std::string baseline_path;
  double min_ratio = -1;  // resolved below: flag > env > 0.75
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--generations") == 0) {
      generations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--min-ratio") == 0) {
      min_ratio = std::strtod(argv[i + 1], nullptr);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'; flags: --generations N --shards K "
                   "--iters N --baseline FILE --min-ratio R\n",
                   argv[i]);
      return 2;
    }
  }

  bench::ChainFixture fx = bench::MakeChain(3);
  PlanShape shape = PlanShape::SingleMJoin(3);
  CoveringTraceConfig tconfig;
  tconfig.num_generations = generations;
  tconfig.values_per_generation = 8;
  tconfig.tuples_per_generation = 40;
  Trace trace = MakeCoveringTrace(fx.query, fx.schemes, tconfig);
  // Cut just past a generation's tuples but before its closing
  // punctuations, so the snapshot carries live state.
  const size_t cut = trace.size() / 2;
  const int64_t now = MaxTimestamp(trace) + 1;
  ExecutorConfig config;

  // Uninterrupted serial reference for the recovery CHECKs.
  uint64_t ref_results = 0;
  {
    auto ref = PlanExecutor::Create(fx.query, fx.schemes, shape, config);
    PUNCTSAFE_CHECK_OK(ref.status());
    PUNCTSAFE_CHECK_OK(FeedTrace(ref.ValueOrDie().get(), trace));
    ref_results = (*ref)->num_results();
  }

  Rates best;
  StateSnapshot snapshot;
  for (size_t iter = 0; iter < iters; ++iter) {
    Rates r;

    // --- Serial capture: the pause an in-process checkpoint imposes
    // between two pushes (state walk + canonicalize).
    auto exec = PlanExecutor::Create(fx.query, fx.schemes, shape, config);
    PUNCTSAFE_CHECK_OK(exec.status());
    for (size_t i = 0; i < cut; ++i) {
      PUNCTSAFE_CHECK_OK((*exec)->Push(trace[i]));
    }
    constexpr size_t kCaptures = 20;
    auto start = Clock::now();
    for (size_t i = 0; i < kCaptures; ++i) {
      snapshot = (*exec)->Checkpoint();
    }
    double secs = SecondsSince(start);
    r.serial_capture_ps = secs > 0 ? kCaptures / secs : 0;

    // --- Codec throughput over the captured bytes.
    constexpr size_t kCodecReps = 50;
    std::string bytes;
    start = Clock::now();
    for (size_t i = 0; i < kCodecReps; ++i) {
      bytes = SerializeSnapshot(snapshot);
    }
    secs = SecondsSince(start);
    r.snapshot_bytes = bytes.size();
    r.serialize_bps = secs > 0 ? kCodecReps * bytes.size() / secs : 0;

    start = Clock::now();
    for (size_t i = 0; i < kCodecReps; ++i) {
      Result<StateSnapshot> parsed = DeserializeSnapshot(bytes);
      PUNCTSAFE_CHECK(parsed.ok()) << parsed.status().ToString();
    }
    secs = SecondsSince(start);
    r.deserialize_bps = secs > 0 ? kCodecReps * bytes.size() / secs : 0;

    // --- Restore latency (fresh-executor creation not timed).
    constexpr size_t kRestores = 10;
    std::vector<std::unique_ptr<PlanExecutor>> fresh;
    for (size_t i = 0; i < kRestores; ++i) {
      auto e = PlanExecutor::Create(fx.query, fx.schemes, shape, config);
      PUNCTSAFE_CHECK_OK(e.status());
      fresh.push_back(std::move(e).ValueOrDie());
    }
    start = Clock::now();
    for (auto& e : fresh) {
      PUNCTSAFE_CHECK_OK(e->RestoreState(snapshot));
    }
    secs = SecondsSince(start);
    r.restore_ps = secs > 0 ? kRestores / secs : 0;

    // Recovery correctness, serial: replay the suffix on the last
    // restored executor.
    for (size_t i = cut; i < trace.size(); ++i) {
      PUNCTSAFE_CHECK_OK(fresh.back()->Push(trace[i]));
    }
    PUNCTSAFE_CHECK(fresh.back()->num_results() == ref_results)
        << "serial kill/restore/replay diverged: "
        << fresh.back()->num_results() << " vs " << ref_results;

    // --- Parallel capture: barrier handshake + per-shard capture +
    // monoid merge.
    ExecutorConfig pconfig = config;
    pconfig.shards = shards;
    auto pexec =
        ParallelExecutor::Create(fx.query, fx.schemes, shape, pconfig);
    PUNCTSAFE_CHECK_OK(pexec.status());
    for (size_t i = 0; i < cut; ++i) {
      PUNCTSAFE_CHECK_OK((*pexec)->Push(trace[i]));
    }
    constexpr size_t kBarriers = 10;
    StateSnapshot psnap;
    start = Clock::now();
    for (size_t i = 0; i < kBarriers; ++i) {
      Result<StateSnapshot> s = (*pexec)->Checkpoint(now);
      PUNCTSAFE_CHECK(s.ok()) << s.status().ToString();
      psnap = std::move(s).ValueOrDie();
    }
    secs = SecondsSince(start);
    r.parallel_capture_ps = secs > 0 ? kBarriers / secs : 0;
    (*pexec)->Stop();  // the kill

    // Recovery correctness, parallel: restore + replay + drain.
    auto presumed =
        ParallelExecutor::Create(fx.query, fx.schemes, shape, pconfig);
    PUNCTSAFE_CHECK_OK(presumed.status());
    PUNCTSAFE_CHECK_OK((*presumed)->RestoreState(psnap));
    for (size_t i = cut; i < trace.size(); ++i) {
      PUNCTSAFE_CHECK_OK((*presumed)->Push(trace[i]));
    }
    uint64_t presults = DrainedResults(presumed->get(), now);
    PUNCTSAFE_CHECK(presults == ref_results)
        << "parallel kill/restore/replay diverged: " << presults << " vs "
        << ref_results;
    (*presumed)->Stop();

    if (iter == 0 || r.serial_capture_ps > best.serial_capture_ps) best = r;
  }

  // Monoid inverse on the live snapshot: split -> merge is byte-exact.
  const std::string canonical = SerializeSnapshot(snapshot);
  std::vector<StateSnapshot> pieces = SplitSnapshot(snapshot, 4);
  StateSnapshot merged = pieces[0];
  for (size_t i = 1; i < pieces.size(); ++i) {
    merged = MergeSnapshots(merged, pieces[i]);
  }
  PUNCTSAFE_CHECK(SerializeSnapshot(merged) == canonical)
      << "split -> merge drifted from the captured snapshot";

  const double pause_us =
      best.serial_capture_ps > 0 ? 1e6 / best.serial_capture_ps : 0;
  std::ostringstream json;
  char buf[256];
  auto emit = [&](const char* key, double v, bool comma = true) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.0f%s\n", key, v,
                  comma ? "," : "");
    json << buf;
  };
  json << "{\n";
  json << "  \"bench\": \"checkpoint\",\n";
  json << "  \"events\": " << trace.size() << ",\n";
  json << "  \"cut\": " << cut << ",\n";
  json << "  \"shards\": " << shards << ",\n";
  json << "  \"hardware_threads\": " << bench::HardwareThreads()
       << ",\n";
  json << "  \"snapshot_bytes\": " << best.snapshot_bytes << ",\n";
  emit("serial_capture_per_sec", best.serial_capture_ps);
  std::snprintf(buf, sizeof(buf), "  \"serial_capture_pause_us\": %.1f,\n",
                pause_us);
  json << buf;
  emit("parallel_capture_per_sec", best.parallel_capture_ps);
  emit("serialize_bytes_per_sec", best.serialize_bps);
  emit("deserialize_bytes_per_sec", best.deserialize_bps);
  emit("restore_per_sec", best.restore_ps);
  std::snprintf(buf, sizeof(buf), "  \"results\": %llu\n",
                static_cast<unsigned long long>(ref_results));
  json << buf;
  json << "}\n";
  std::fputs(json.str().c_str(), stdout);

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    // Gate the pause (as captures/sec) and the codec/restore rates;
    // the parallel barrier rate is informational (scheduler-bound).
    if (!bench::CheckBaselineRates(
            ss.str(),
            {{"serial_capture_per_sec", best.serial_capture_ps},
             {"serialize_bytes_per_sec", best.serialize_bps},
             {"deserialize_bytes_per_sec", best.deserialize_bps},
             {"restore_per_sec", best.restore_ps}},
            bench::ResolveMinRatio(min_ratio))) {
      return 1;
    }
  }
  return 0;
}

}  // namespace punctsafe

int main(int argc, char** argv) { return punctsafe::Main(argc, argv); }
