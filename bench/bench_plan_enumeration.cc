// Experiment E12 (paper Section 5.2, Plan Enumeration): generating
// only the safe plans (System-R-style DP over strongly connected
// punctuation sub-graphs) vs the full plan space. The counters report
// how small the safe fraction is; timing shows the DP cost staying
// tame while total shape counts explode (A000311).

#include "bench_util.h"
#include "core/naive_checker.h"
#include "plan/enumerator.h"

namespace punctsafe {
namespace {

void BM_SafePlanEnumeration(benchmark::State& state) {
  bench::ChainFixture fx =
      bench::MakeChain(static_cast<size_t>(state.range(0)));
  size_t safe_plans = 0;
  for (auto _ : state) {
    SafePlanEnumerator en(fx.query, fx.schemes);
    auto plans = en.EnumerateSafePlans(/*limit=*/100000);
    PUNCTSAFE_CHECK_OK(plans.status());
    safe_plans = plans->size();
  }
  state.counters["safe_plans"] = static_cast<double>(safe_plans);
  state.counters["all_shapes"] = static_cast<double>(
      CountAllShapes(static_cast<size_t>(state.range(0))));
}
BENCHMARK(BM_SafePlanEnumeration)->DenseRange(3, 8);

// With a sparser scheme set the safe fraction collapses further: only
// chains anchored at the punctuated end survive.
void BM_SparseSchemeEnumeration(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bench::ChainFixture full = bench::MakeChain(n);
  // Keep only the schemes of the two chain endpoints.
  SchemeSet sparse;
  for (const PunctuationScheme& s : full.schemes.schemes()) {
    if (s.stream() == "T0" || s.stream() == "T" + std::to_string(n - 1)) {
      PUNCTSAFE_CHECK_OK(sparse.Add(s));
    }
  }
  size_t safe_plans = 0;
  for (auto _ : state) {
    SafePlanEnumerator en(full.query, sparse);
    auto plans = en.EnumerateSafePlans(/*limit=*/100000);
    PUNCTSAFE_CHECK_OK(plans.status());
    safe_plans = plans->size();
  }
  state.counters["safe_plans"] = static_cast<double>(safe_plans);
  state.counters["all_shapes"] =
      static_cast<double>(CountAllShapes(n));
}
BENCHMARK(BM_SparseSchemeEnumeration)->DenseRange(3, 8);

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
