// Experiment E1 (paper Figure 1 / Example 1): the online-auction
// binary join. With itemid punctuations on both streams the join
// state tracks the open-auction window; stripping the punctuations
// from the *same* market makes state_hw grow linearly with the input.
// Sweep the market size to see the bounded-vs-linear shapes.

#include "bench_util.h"
#include "workload/auction.h"

namespace punctsafe {
namespace {

void BM_AuctionWithPunctuations(benchmark::State& state) {
  AuctionConfig config;
  config.num_items = static_cast<size_t>(state.range(0));
  config.bids_per_item = 8;
  config.max_open = 32;
  Trace trace = AuctionWorkload::Generate(config);

  QueryRegister reg;
  PUNCTSAFE_CHECK_OK(AuctionWorkload::Setup(&reg));
  auto q = ContinuousJoinQuery::Create(reg.catalog(),
                                       AuctionWorkload::QueryStreams(),
                                       AuctionWorkload::QueryPredicates());
  PUNCTSAFE_CHECK_OK(q.status());
  bench::RunTraceAndRecord(*q, reg.schemes(), PlanShape::SingleMJoin(2),
                           trace, {}, state);
}
BENCHMARK(BM_AuctionWithPunctuations)->Arg(250)->Arg(1000)->Arg(4000);

void BM_AuctionWithoutPunctuations(benchmark::State& state) {
  AuctionConfig config;
  config.num_items = static_cast<size_t>(state.range(0));
  config.bids_per_item = 8;
  config.max_open = 32;
  config.punctuate_items = false;
  config.punctuate_close = false;
  Trace trace = AuctionWorkload::Generate(config);

  QueryRegister reg;
  PUNCTSAFE_CHECK_OK(AuctionWorkload::Setup(&reg));
  auto q = ContinuousJoinQuery::Create(reg.catalog(),
                                       AuctionWorkload::QueryStreams(),
                                       AuctionWorkload::QueryPredicates());
  PUNCTSAFE_CHECK_OK(q.status());
  bench::RunTraceAndRecord(*q, reg.schemes(), PlanShape::SingleMJoin(2),
                           trace, {}, state);
}
BENCHMARK(BM_AuctionWithoutPunctuations)->Arg(250)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
