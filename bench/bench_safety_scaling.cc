// Experiment E7 (paper Section 4.3): safety-checking complexity.
// Three checkers on the same growing chain queries:
//  * the linear simple-graph check (Section 4.1),
//  * the polynomial transformed-graph check (Definition 11),
//  * the exponential baseline that enumerates every plan shape — the
//    approach the paper's contribution avoids (capped at 7 streams:
//    39208 shapes; 8 would be 660032).
// The `shapes` counter shows the plan-space explosion the one-graph
// check sidesteps.

#include "bench_util.h"
#include "core/naive_checker.h"
#include "core/punctuation_graph.h"
#include "core/transformed_punctuation_graph.h"

namespace punctsafe {
namespace {

void BM_LinearPgCheck(benchmark::State& state) {
  bench::ChainFixture fx =
      bench::MakeChain(static_cast<size_t>(state.range(0)));
  bool safe = false;
  for (auto _ : state) {
    safe = PunctuationGraph::Build(fx.query, fx.schemes)
               .IsStronglyConnected();
    benchmark::DoNotOptimize(safe);
  }
  state.counters["safe"] = safe ? 1 : 0;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LinearPgCheck)
    ->DenseRange(3, 7)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Complexity(benchmark::oN);

void BM_PolynomialTpgCheck(benchmark::State& state) {
  bench::ChainFixture fx =
      bench::MakeChain(static_cast<size_t>(state.range(0)));
  bool safe = false;
  for (auto _ : state) {
    safe = TransformedPunctuationGraph::Build(fx.query, fx.schemes)
               .CollapsedToSingleNode();
    benchmark::DoNotOptimize(safe);
  }
  state.counters["safe"] = safe ? 1 : 0;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PolynomialTpgCheck)
    ->DenseRange(3, 7)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

void BM_ExponentialNaiveCheck(benchmark::State& state) {
  bench::ChainFixture fx =
      bench::MakeChain(static_cast<size_t>(state.range(0)));
  size_t shapes = 0;
  bool safe = false;
  for (auto _ : state) {
    auto result = NaiveSafetyCheck(fx.query, fx.schemes, /*max_streams=*/8,
                                   /*stop_at_first_safe=*/false);
    PUNCTSAFE_CHECK_OK(result.status());
    shapes = result->shapes_checked;
    safe = result->safe;
  }
  state.counters["safe"] = safe ? 1 : 0;
  state.counters["shapes"] = static_cast<double>(shapes);
}
BENCHMARK(BM_ExponentialNaiveCheck)->DenseRange(3, 7);

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
