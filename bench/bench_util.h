// Shared helpers for the experiment benchmarks. Each bench binary
// regenerates one row of the EXPERIMENTS.md index; counters carry the
// behavioral quantities (state high-water, results, verdicts) next to
// google-benchmark's timing columns.

#ifndef PUNCTSAFE_BENCH_BENCH_UTIL_H_
#define PUNCTSAFE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "exec/input_manager.h"
#include "exec/parallel_executor.h"
#include "exec/plan_executor.h"
#include "query/cjq.h"
#include "stream/catalog.h"
#include "util/logging.h"

namespace punctsafe {
namespace bench {

/// \brief Hardware thread count, recorded uniformly as
/// "hardware_threads" in every BENCH_*.json so a reader (and the
/// gates below) can tell a 1-core container's numbers from a real
/// multi-core run. hardware_concurrency()'s "unknown" (0) is
/// normalized to 1 — the conservative regime.
inline unsigned HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// \brief Gates a parallel-vs-serial (or sharded-vs-pipelined)
/// speedup. On a single-hardware-thread host the parallel runtime
/// time-slices its workers on one core, so the ratio carries no
/// signal — the check is SKIPPED (returns true, says so on stderr)
/// instead of failing a starved runner. Returns false only when the
/// host has real parallelism and `speedup` still fell below `floor`.
inline bool CheckParallelSpeedup(const char* what, double speedup,
                                 double floor) {
  if (HardwareThreads() <= 1) {
    std::fprintf(stderr,
                 "%s: SKIP parallel-vs-serial ratio gate "
                 "(hardware_threads == 1)\n",
                 what);
    return true;
  }
  if (speedup >= floor) return true;
  std::fprintf(stderr, "%s: speedup %.3f below floor %.3f\n", what, speedup,
               floor);
  return false;
}

/// Paper triangle fixture: S1(A,B) ⋈ S2(B,C) ⋈ S3(C,A).
inline StreamCatalog TriangleCatalog() {
  StreamCatalog catalog;
  PUNCTSAFE_CHECK_OK(catalog.Register("S1", Schema::OfInts({"A", "B"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("S2", Schema::OfInts({"B", "C"})));
  PUNCTSAFE_CHECK_OK(catalog.Register("S3", Schema::OfInts({"C", "A"})));
  return catalog;
}

inline ContinuousJoinQuery TriangleQuery(const StreamCatalog& catalog) {
  auto q = ContinuousJoinQuery::Create(
      catalog, {"S1", "S2", "S3"},
      {Eq({"S1", "B"}, {"S2", "B"}), Eq({"S2", "C"}, {"S3", "C"}),
       Eq({"S3", "A"}, {"S1", "A"})});
  PUNCTSAFE_CHECK_OK(q.status());
  return std::move(q).ValueOrDie();
}

inline PunctuationScheme SchemeOn(const StreamCatalog& catalog,
                                  const std::string& stream,
                                  const std::vector<std::string>& attrs) {
  auto schema = catalog.Get(stream);
  PUNCTSAFE_CHECK_OK(schema.status());
  auto s =
      PunctuationScheme::OnAttributes(stream, **schema, attrs);
  PUNCTSAFE_CHECK_OK(s.status());
  return std::move(s).ValueOrDie();
}

inline SchemeSet Fig5Schemes(const StreamCatalog& catalog) {
  SchemeSet set;
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S1", {"B"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S2", {"C"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S3", {"A"})));
  return set;
}

inline SchemeSet Fig8Schemes(const StreamCatalog& catalog) {
  SchemeSet set;
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S1", {"B"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S2", {"B"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S2", {"C"})));
  PUNCTSAFE_CHECK_OK(set.Add(SchemeOn(catalog, "S3", {"C", "A"})));
  return set;
}

/// Builds an executor, feeds the trace, records the standard counters.
inline void RunTraceAndRecord(const ContinuousJoinQuery& query,
                              const SchemeSet& schemes,
                              const PlanShape& shape, const Trace& trace,
                              ExecutorConfig config,
                              benchmark::State& state) {
  size_t high_water = 0, final_live = 0, punct_high = 0;
  uint64_t results = 0;
  StateMetricsSnapshot mem;
  for (auto _ : state) {
    auto exec = PlanExecutor::Create(query, schemes, shape, config);
    PUNCTSAFE_CHECK_OK(exec.status());
    PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
    high_water = (*exec)->tuple_high_water();
    final_live = (*exec)->TotalLiveTuples();
    punct_high = (*exec)->punctuation_high_water();
    results = (*exec)->num_results();
    mem = {};
    for (const auto& op : (*exec)->operators()) {
      mem += op->AggregateStateSnapshot();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
  state.counters["state_hw"] = static_cast<double>(high_water);
  state.counters["final_live"] = static_cast<double>(final_live);
  state.counters["punct_hw"] = static_cast<double>(punct_high);
  state.counters["results"] = static_cast<double>(results);
  // Memory-side gauges (experiment E17): the arena's reserved/live
  // byte footprint, wholesale block reclaims, and how many system
  // allocations the insert path performed (0-growth in arena steady
  // state).
  state.counters["arena_bytes_reserved"] =
      static_cast<double>(mem.arena_bytes_reserved);
  state.counters["arena_bytes_live"] =
      static_cast<double>(mem.arena_bytes_live);
  state.counters["arena_blocks_reclaimed"] =
      static_cast<double>(mem.arena_blocks_reclaimed);
  state.counters["insert_allocs"] = static_cast<double>(mem.insert_allocs);
}

/// One pipelined-executor pass over the trace; records the parallel
/// runtime's behavioral counters (prefixed) next to the serial ones so
/// a single bench row shows purge-boundedness holds under concurrency.
inline void RecordParallelCounters(const ContinuousJoinQuery& query,
                                   const SchemeSet& schemes,
                                   const PlanShape& shape, const Trace& trace,
                                   ExecutorConfig config,
                                   benchmark::State& state) {
  config.mode = ExecutionMode::kParallel;
  auto exec = ParallelExecutor::Create(query, schemes, shape, config);
  PUNCTSAFE_CHECK_OK(exec.status());
  PUNCTSAFE_CHECK_OK(FeedTraceParallel(exec.ValueOrDie().get(), trace));
  state.counters["parallel_state_hw"] =
      static_cast<double>((*exec)->tuple_high_water());
  state.counters["parallel_final_live"] =
      static_cast<double>((*exec)->TotalLiveTuples());
  state.counters["parallel_results"] =
      static_cast<double>((*exec)->num_results());
  (*exec)->Stop();
}

/// Chain query T0 - T1 - ... - T{n-1} on a shared key attribute, with
/// one simple scheme per stream (fully safe): the scaling fixture.
struct ChainFixture {
  StreamCatalog catalog;
  ContinuousJoinQuery query;
  SchemeSet schemes;
};

inline ChainFixture MakeChain(size_t n) {
  ChainFixture fx{{}, ContinuousJoinQuery(), {}};
  std::vector<std::string> streams;
  std::vector<JoinPredicateSpec> preds;
  for (size_t i = 0; i < n; ++i) {
    std::string name = "T" + std::to_string(i);
    PUNCTSAFE_CHECK_OK(fx.catalog.Register(name, Schema::OfInts({"k", "v"})));
    if (i > 0) preds.push_back(Eq({streams.back(), "k"}, {name, "k"}));
    streams.push_back(name);
    PUNCTSAFE_CHECK_OK(fx.schemes.Add(SchemeOn(fx.catalog, name, {"k"})));
  }
  auto q = ContinuousJoinQuery::Create(fx.catalog, streams, preds);
  PUNCTSAFE_CHECK_OK(q.status());
  fx.query = std::move(q).ValueOrDie();
  return fx;
}

// ------------------------------------------------ baseline regression

/// One gated throughput: its flat-JSON key and this run's value.
struct TrackedRate {
  const char* key;
  double current;
};

/// Pulls `"key": number` out of the benches' own flat JSON output (no
/// nested objects with colliding key names are tracked).
inline bool FindJsonNumber(const std::string& text, const std::string& key,
                           double* out) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

/// Gate floor resolution: an explicit --min-ratio flag wins, then the
/// PUNCTSAFE_BENCH_MIN_RATIO environment variable, then 0.75. Pass
/// flag_value <= 0 for "flag not given".
inline double ResolveMinRatio(double flag_value) {
  if (flag_value > 0) return flag_value;
  if (const char* env = std::getenv("PUNCTSAFE_BENCH_MIN_RATIO")) {
    double v = std::strtod(env, nullptr);
    if (v > 0) return v;
    std::fprintf(stderr,
                 "ignoring unparsable PUNCTSAFE_BENCH_MIN_RATIO='%s'\n",
                 env);
  }
  return 0.75;
}

/// Checks every tracked rate against min_ratio x its baseline value.
/// Keys absent from the baseline are skipped (new metrics gate only
/// once re-baselined). On any regression, prints the full
/// measured/baseline ratio table to stderr so the failing CI log shows
/// how far off each rate is, not just which one tripped. Returns true
/// iff all tracked rates pass.
inline bool CheckBaselineRates(const std::string& baseline_json,
                               const std::vector<TrackedRate>& tracked,
                               double min_ratio) {
  bool ok = true;
  for (const TrackedRate& t : tracked) {
    double want = 0;
    if (!FindJsonNumber(baseline_json, t.key, &want) || want <= 0) continue;
    if (t.current < want * min_ratio) ok = false;
  }
  if (ok) {
    std::fprintf(stderr, "baseline check passed (min-ratio %.2f)\n",
                 min_ratio);
    return true;
  }
  std::fprintf(stderr,
               "--- bench gate failed (min-ratio %.2f) ---\n"
               "%-32s %14s %14s %7s  %s\n",
               min_ratio, "key", "measured", "baseline", "ratio",
               "status");
  for (const TrackedRate& t : tracked) {
    double want = 0;
    if (!FindJsonNumber(baseline_json, t.key, &want) || want <= 0) {
      std::fprintf(stderr, "%-32s %14.0f %14s %7s  %s\n", t.key,
                   t.current, "-", "-", "SKIP (no baseline)");
      continue;
    }
    double ratio = t.current / want;
    std::fprintf(stderr, "%-32s %14.0f %14.0f %7.2f  %s\n", t.key,
                 t.current, want, ratio,
                 ratio < min_ratio ? "FAIL" : "ok");
  }
  return false;
}

}  // namespace bench
}  // namespace punctsafe

#endif  // PUNCTSAFE_BENCH_BENCH_UTIL_H_
