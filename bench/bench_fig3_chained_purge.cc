// Experiment E2 (paper Figure 3 / Section 3.2): the chained purge
// strategy on the 3-way chain query S1.B=S2.B, S2.C=S3.C. Purging a
// stored S1 tuple needs punctuations from S2 (directly) and from S3
// (on the C-values of the joinable S2 tuples) — the chain effect.
// Compared against PurgePolicy::kNone on the same trace to isolate
// what the strategy buys.

#include "bench_util.h"
#include "util/rng.h"

namespace punctsafe {
namespace {

ContinuousJoinQuery ChainQuery(const StreamCatalog& catalog) {
  auto q = ContinuousJoinQuery::Create(
      catalog, {"S1", "S2", "S3"},
      {Eq({"S1", "B"}, {"S2", "B"}), Eq({"S2", "C"}, {"S3", "C"})});
  PUNCTSAFE_CHECK_OK(q.status());
  return std::move(q).ValueOrDie();
}

SchemeSet ChainSchemes(const StreamCatalog& catalog) {
  // Cycle of simple schemes making every state purgeable:
  // S1(B): closes what S2 waits on; S2(B) and S2(C); S3(C).
  SchemeSet set;
  PUNCTSAFE_CHECK_OK(set.Add(bench::SchemeOn(catalog, "S1", {"B"})));
  PUNCTSAFE_CHECK_OK(set.Add(bench::SchemeOn(catalog, "S2", {"B"})));
  PUNCTSAFE_CHECK_OK(set.Add(bench::SchemeOn(catalog, "S2", {"C"})));
  PUNCTSAFE_CHECK_OK(set.Add(bench::SchemeOn(catalog, "S3", {"C"})));
  return set;
}

// Windowed trace: values live in windows of `window` ids; at each
// window boundary every scheme closes the expiring ids.
Trace ChainTrace(size_t windows, size_t tuples_per_window) {
  Rng rng(17);
  Trace trace;
  int64_t now = 0;
  for (size_t w = 0; w < windows; ++w) {
    int64_t base = static_cast<int64_t>(w) * 4;
    for (size_t t = 0; t < tuples_per_window; ++t) {
      int64_t v1 = base + rng.NextInRange(0, 3);
      int64_t v2 = base + rng.NextInRange(0, 3);
      switch (rng.NextBelow(3)) {
        case 0:
          trace.push_back({"S1", StreamElement::OfTuple(
                                     Tuple({Value(v1), Value(v2)}), ++now)});
          break;
        case 1:
          trace.push_back({"S2", StreamElement::OfTuple(
                                     Tuple({Value(v1), Value(v2)}), ++now)});
          break;
        default:
          trace.push_back({"S3", StreamElement::OfTuple(
                                     Tuple({Value(v1), Value(v2)}), ++now)});
      }
    }
    for (int64_t v = base; v < base + 4; ++v) {
      trace.push_back({"S1", StreamElement::OfPunctuation(
                                 Punctuation::OfConstants(2, {{1, Value(v)}}),
                                 ++now)});
      trace.push_back({"S2", StreamElement::OfPunctuation(
                                 Punctuation::OfConstants(2, {{0, Value(v)}}),
                                 ++now)});
      trace.push_back({"S2", StreamElement::OfPunctuation(
                                 Punctuation::OfConstants(2, {{1, Value(v)}}),
                                 ++now)});
      trace.push_back({"S3", StreamElement::OfPunctuation(
                                 Punctuation::OfConstants(2, {{0, Value(v)}}),
                                 ++now)});
    }
  }
  return trace;
}

void BM_ChainedPurge(benchmark::State& state) {
  StreamCatalog catalog = bench::TriangleCatalog();
  ContinuousJoinQuery q = ChainQuery(catalog);
  SchemeSet schemes = ChainSchemes(catalog);
  Trace trace = ChainTrace(static_cast<size_t>(state.range(0)), 40);
  ExecutorConfig config;
  config.mjoin.purge_policy =
      state.range(1) == 0 ? PurgePolicy::kEager : PurgePolicy::kNone;
  bench::RunTraceAndRecord(q, schemes, PlanShape::SingleMJoin(3), trace,
                           config, state);
}
BENCHMARK(BM_ChainedPurge)
    ->ArgNames({"windows", "no_purge"})
    ->Args({20, 0})
    ->Args({80, 0})
    ->Args({320, 0})
    ->Args({20, 1})
    ->Args({80, 1})
    ->Args({320, 1});

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
