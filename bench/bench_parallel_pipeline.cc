// Serial vs pipelined executor throughput on a k-way chain query
// (T0 ⋈ T1 ⋈ ... on a shared key) under a left-deep binary plan — the
// shape with maximum pipeline depth, one worker thread per join.
// Emits a single JSON object so CI and notebooks can diff runs.
//
// Usage: bench_parallel_pipeline [--streams N] [--generations G]
//                                [--iters I] [--queue-capacity C]
//                                [--shards K] [--observe]
//                                [--metrics-out FILE]
//
// --observe runs both executors with the runtime observability hooks
// enabled (ExecutorConfig::observe); --metrics-out writes one
// exporter JSONL line per run — per-shard-operator latency and
// punctuation-lag quantiles included — which CI uploads as an
// artifact (render with tools/obs_report.py). --metrics-out implies
// --observe.
//
// Note: pipeline parallelism needs one hardware thread per operator to
// pay off; the JSON records hardware_threads so a 1-core container's
// slowdown is interpretable. On >= 4 cores the 4-way chain target is
// >= 1.5x over serial.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/parallel_executor.h"
#include "obs/exporter.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

struct RunStats {
  double seconds = 0;
  uint64_t results = 0;
  size_t state_hw = 0;
  size_t final_live = 0;
};

using Clock = std::chrono::steady_clock;

RunStats RunSerialOnce(const bench::ChainFixture& fx, const PlanShape& shape,
                       const Trace& trace, bool observe,
                       obs::MetricsExporter* exporter) {
  ExecutorConfig config;
  config.observe.enabled = observe;
  auto exec = PlanExecutor::Create(fx.query, fx.schemes, shape, config);
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  auto elapsed = std::chrono::duration<double>(Clock::now() - start);
  RunStats stats;
  stats.seconds = elapsed.count();
  stats.results = (*exec)->num_results();
  stats.state_hw = (*exec)->tuple_high_water();
  stats.final_live = (*exec)->TotalLiveTuples();
  if (exporter != nullptr) {
    obs::MetricsExporter::SnapshotFn source =
        [&] { return (*exec)->ObservabilitySnapshot(); };
    // One line per run at quiescence (no background thread: the run
    // is short and the final state is the interesting one).
    exporter->Rebind(std::move(source));
    exporter->ExportNow();
  }
  return stats;
}

RunStats RunParallelOnce(const bench::ChainFixture& fx,
                         const PlanShape& shape, const Trace& trace,
                         size_t queue_capacity, size_t shards, bool observe,
                         obs::MetricsExporter* exporter) {
  ExecutorConfig config;
  config.queue_capacity = queue_capacity;
  config.shards = shards;
  config.observe.enabled = observe;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTraceParallel(exec.ValueOrDie().get(), trace));
  auto elapsed = std::chrono::duration<double>(Clock::now() - start);
  RunStats stats;
  stats.seconds = elapsed.count();
  stats.results = (*exec)->num_results();
  stats.state_hw = (*exec)->tuple_high_water();
  stats.final_live = (*exec)->TotalLiveTuples();
  if (exporter != nullptr) {
    obs::MetricsExporter::SnapshotFn source =
        [&] { return (*exec)->ObservabilitySnapshot(); };
    exporter->Rebind(std::move(source));
    exporter->ExportNow();
  }
  (*exec)->Stop();
  return stats;
}

template <typename Fn>
RunStats Best(size_t iters, const Fn& run) {
  RunStats best;
  for (size_t i = 0; i < iters; ++i) {
    RunStats stats = run();
    if (i == 0 || stats.seconds < best.seconds) best = stats;
  }
  return best;
}

void PrintRun(const char* name, const RunStats& s, size_t events,
              bool trailing_comma) {
  std::printf(
      "  \"%s\": {\"seconds\": %.6f, \"events_per_sec\": %.0f, "
      "\"results\": %llu, \"state_hw\": %zu, \"final_live\": %zu}%s\n",
      name, s.seconds, s.seconds > 0 ? events / s.seconds : 0.0,
      static_cast<unsigned long long>(s.results), s.state_hw, s.final_live,
      trailing_comma ? "," : "");
}

int Main(int argc, char** argv) {
  size_t streams = 4;
  size_t generations = 200;
  size_t iters = 3;
  size_t queue_capacity = 1024;
  size_t shards = 1;
  bool observe = false;
  std::string metrics_out;
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--observe") == 0) {
      observe = true;
      i += 1;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
      return 2;
    }
    if (std::strcmp(argv[i], "--streams") == 0) {
      streams = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--generations") == 0) {
      generations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      queue_capacity = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = argv[i + 1];
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'; flags: --streams N --generations N "
                   "--iters N --queue-capacity N --shards N --observe "
                   "--metrics-out FILE\n",
                   argv[i]);
      return 2;
    }
    i += 2;
  }
  if (!metrics_out.empty()) observe = true;

  bench::ChainFixture fx = bench::MakeChain(streams);
  std::vector<size_t> order(streams);
  for (size_t i = 0; i < streams; ++i) order[i] = i;
  PlanShape shape = PlanShape::LeftDeepBinary(order);

  CoveringTraceConfig tconfig;
  tconfig.num_generations = generations;
  tconfig.values_per_generation = 4;
  tconfig.tuples_per_generation = 40;
  Trace trace = MakeCoveringTrace(fx.query, fx.schemes, tconfig);

  // One JSONL line per executor run (timed runs included: with
  // --observe the measurement IS the instrumented configuration).
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!metrics_out.empty()) {
    obs::ExporterOptions options;
    options.interval_ms = 0;  // ExportNow only
    options.export_on_stop = false;
    exporter = std::make_unique<obs::MetricsExporter>(
        obs::MetricsExporter::SnapshotFn{[] { return obs::ObsSnapshot{}; }},
        metrics_out, options);
    if (!exporter->ok()) {
      std::fprintf(stderr, "cannot open metrics-out '%s'\n",
                   metrics_out.c_str());
      return 2;
    }
  }

  RunStats serial = Best(iters, [&] {
    return RunSerialOnce(fx, shape, trace, observe, exporter.get());
  });
  RunStats parallel = Best(iters, [&] {
    return RunParallelOnce(fx, shape, trace, queue_capacity, shards, observe,
                           exporter.get());
  });

  PUNCTSAFE_CHECK(serial.results == parallel.results)
      << "executors disagree: serial=" << serial.results
      << " parallel=" << parallel.results;

  std::printf("{\n");
  std::printf("  \"bench\": \"parallel_pipeline\",\n");
  std::printf("  \"plan\": \"left_deep_binary\",\n");
  std::printf("  \"chain_streams\": %zu,\n", streams);
  std::printf("  \"operators\": %zu,\n", shape.NumOperators());
  std::printf("  \"events\": %zu,\n", trace.size());
  std::printf("  \"queue_capacity\": %zu,\n", queue_capacity);
  std::printf("  \"shards\": %zu,\n", shards);
  std::printf("  \"observe\": %s,\n", observe ? "true" : "false");
  std::printf("  \"hardware_threads\": %u,\n",
              bench::HardwareThreads());
  PrintRun("serial", serial, trace.size(), /*trailing_comma=*/true);
  PrintRun("parallel", parallel, trace.size(), /*trailing_comma=*/true);
  std::printf("  \"speedup\": %.3f\n",
              parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0);
  std::printf("}\n");
  return 0;
}

}  // namespace
}  // namespace punctsafe

int main(int argc, char** argv) { return punctsafe::Main(argc, argv); }
