// Experiment E3 (paper Figure 5 / Section 4.1): punctuation-graph
// construction and the Corollary 1 strong-connectivity check. The
// paper claims linear time; the sweep over chain queries of growing
// width lets the per-stream cost be read off the timing column.
// Counters confirm the Figure 5 verdicts (safe=1, all states
// purgeable).

#include "bench_util.h"
#include "core/punctuation_graph.h"

namespace punctsafe {
namespace {

void BM_Fig5BuildAndCheck(benchmark::State& state) {
  StreamCatalog catalog = bench::TriangleCatalog();
  ContinuousJoinQuery q = bench::TriangleQuery(catalog);
  SchemeSet schemes = bench::Fig5Schemes(catalog);
  bool safe = false;
  size_t purgeable = 0;
  for (auto _ : state) {
    PunctuationGraph pg = PunctuationGraph::Build(q, schemes);
    safe = pg.IsStronglyConnected();
    purgeable = 0;
    for (size_t s = 0; s < q.num_streams(); ++s) {
      purgeable += pg.StatePurgeable(s) ? 1 : 0;
    }
    benchmark::DoNotOptimize(pg);
  }
  state.counters["safe"] = safe ? 1 : 0;
  state.counters["purgeable_states"] = static_cast<double>(purgeable);
}
BENCHMARK(BM_Fig5BuildAndCheck);

void BM_PgCheckScaling(benchmark::State& state) {
  bench::ChainFixture fx = bench::MakeChain(static_cast<size_t>(
      state.range(0)));
  bool safe = false;
  for (auto _ : state) {
    PunctuationGraph pg = PunctuationGraph::Build(fx.query, fx.schemes);
    safe = pg.IsStronglyConnected();
    benchmark::DoNotOptimize(safe);
  }
  state.counters["safe"] = safe ? 1 : 0;
  state.counters["streams"] = static_cast<double>(state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PgCheckScaling)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
