// Experiment E4 (paper Figure 7): same query, same schemes, same
// trace — the plan shape decides safety. The single MJoin over the
// Figure 5 triangle keeps state_hw flat across trace lengths; every
// binary tree leaks its lower join's S1 state linearly, exactly the
// paper's "not all execution plans are safe" point.

#include "bench_util.h"
#include "core/plan_safety.h"
#include "util/rng.h"

namespace punctsafe {
namespace {

Trace TriangleTrace(size_t windows, size_t tuples_per_window) {
  Rng rng(23);
  Trace trace;
  int64_t now = 0;
  for (size_t w = 0; w < windows; ++w) {
    int64_t base = static_cast<int64_t>(w) * 4;
    auto val = [&]() { return Value(base + rng.NextInRange(0, 3)); };
    for (size_t t = 0; t < tuples_per_window; ++t) {
      const char* streams[] = {"S1", "S2", "S3"};
      trace.push_back({streams[rng.NextBelow(3)],
                       StreamElement::OfTuple(Tuple({val(), val()}), ++now)});
    }
    // Figure 5 schemes: S1 on B (attr 1), S2 on C (attr 1), S3 on A
    // (attr 1) — close the window's ids.
    for (int64_t v = base; v < base + 4; ++v) {
      for (const char* s : {"S1", "S2", "S3"}) {
        trace.push_back(
            {s, StreamElement::OfPunctuation(
                    Punctuation::OfConstants(2, {{1, Value(v)}}), ++now)});
      }
    }
  }
  return trace;
}

void BM_PlanShape(benchmark::State& state) {
  StreamCatalog catalog = bench::TriangleCatalog();
  ContinuousJoinQuery q = bench::TriangleQuery(catalog);
  SchemeSet schemes = bench::Fig5Schemes(catalog);
  Trace trace = TriangleTrace(static_cast<size_t>(state.range(0)), 30);
  PlanShape shape = state.range(1) == 0
                        ? PlanShape::SingleMJoin(3)
                        : PlanShape::LeftDeepBinary(
                              {static_cast<size_t>(state.range(1) - 1),
                               static_cast<size_t>(state.range(1) % 3),
                               static_cast<size_t>((state.range(1) + 1) % 3)});
  // shape arg: 0 = MJoin; 1..3 = binary tree rooted at different pairs.
  bench::RunTraceAndRecord(q, schemes, shape, trace, {}, state);
  auto report = CheckPlanSafety(q, schemes, shape);
  state.counters["plan_safe"] =
      report.ok() && report.ValueOrDie().safe ? 1 : 0;
}
BENCHMARK(BM_PlanShape)
    ->ArgNames({"windows", "shape"})
    ->Args({25, 0})
    ->Args({100, 0})
    ->Args({400, 0})
    ->Args({25, 1})
    ->Args({100, 1})
    ->Args({400, 1});

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
