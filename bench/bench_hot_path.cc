// Hot-path microbenchmarks for the tuple/probe data path, plus an
// end-to-end tuples/sec comparison (serial vs pipelined vs sharded).
//
// The micro sections drive TupleStore directly the way the join
// operators do: values are constructed once (as they are on tuple
// arrival) and then probed many times, so a cached key hash pays off
// exactly as it does inside MJoinOperator::Expand. The probe loops
// report probes/sec for int64 and string keys separately — string
// keys are where rehash-per-probe used to dominate. The *_batch_*
// micros drive the vectorized TupleBatch paths (InsertBatch and
// ProbeBatch over key-clustered batches, SIMD dispatch recorded as
// simd_dispatch) and hard-CHECK hit-count identity against the
// per-row cursor; serial_batchN_events_per_sec sweeps
// ExecutorConfig::batch_size end-to-end. The insert comparison is
// per-row vs InsertBatch over identical key-clustered rows (batch
// must not lose — in-binary gate); the *_expand_* micros drive a
// whole m=3 MJoinOperator per-row vs batch-at-a-time through the
// columnar expansion frontier and report arrivals/sec plus the
// batch-over-row speedup.
//
// Emits one JSON object (checked-in baseline: BENCH_hot_path.json,
// experiment E16 in EXPERIMENTS.md). With --baseline FILE the binary
// re-reads a checked-in baseline and exits non-zero if any tracked
// throughput fell below the gate floor of it — the CI regression gate
// (tools/ci.sh, bench-smoke config). The floor is --min-ratio, else
// the PUNCTSAFE_BENCH_MIN_RATIO environment variable, else 0.75; a
// failing gate prints the full measured/baseline ratio table.
//
// Also measures the end-to-end runs with ExecutorConfig::observe on,
// reporting observe_ratio_* (observe-off time / observe-on time) — the
// observability overhead contract is >= 0.97.
//
// Usage: bench_hot_path [--store-tuples N] [--keys K]
//                       [--probe-iters M] [--generations G] [--iters I]
//                       [--baseline FILE] [--min-ratio R]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/plan_safety.h"
#include "exec/mjoin.h"
#include "exec/parallel_executor.h"
#include "exec/simd.h"
#include "exec/tuple_batch.h"
#include "exec/tuple_store.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------- micro

struct MicroResult {
  double insert_mps = 0;      // inserts per second (millions not implied)
  double insert_clustered_mps = 0;  // per-row inserts, clustered keys
  double insert_batch_mps = 0;  // TupleBatch-build + InsertBatch path
  double probe_legacy_ps = 0; // Probe() (allocating) probes/sec
  double probe_each_ps = 0;   // ProbeEach cursor probes/sec
  double probe_into_ps = 0;   // ProbeInto scratch probes/sec
  double probe_batch_ps = 0;  // vectorized ProbeBatch probes/sec
  double purge_ps = 0;        // interleaved insert+purge ops/sec
  uint64_t checksum = 0;      // anti-DCE
};

std::vector<Tuple> MakeRows(size_t n, size_t keys, bool string_keys) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value key = string_keys
                    ? Value("key-" + std::to_string(i % keys))
                    : Value(static_cast<int64_t>(i % keys));
    rows.push_back(Tuple({key, Value(static_cast<int64_t>(i))}));
  }
  return rows;
}

std::vector<Value> MakeProbeValues(size_t keys, bool string_keys) {
  // Constructed once, probed many times — the arrival-side pattern.
  std::vector<Value> probes;
  probes.reserve(keys);
  for (size_t k = 0; k < keys; ++k) {
    probes.push_back(string_keys ? Value("key-" + std::to_string(k))
                                 : Value(static_cast<int64_t>(k)));
  }
  return probes;
}

MicroResult RunMicro(size_t n, size_t keys, size_t probe_iters,
                     bool string_keys) {
  MicroResult r;
  std::vector<Tuple> rows = MakeRows(n, keys, string_keys);
  std::vector<Value> probes = MakeProbeValues(keys, string_keys);

  // Insert throughput.
  {
    auto start = Clock::now();
    TupleStore store({0});
    for (const Tuple& t : rows) store.Insert(t);
    double secs = SecondsSince(start);
    r.insert_mps = secs > 0 ? n / secs : 0;
    // Legacy allocating probe.
    start = Clock::now();
    for (size_t i = 0; i < probe_iters; ++i) {
      r.checksum += store.Probe(0, probes[i % keys]).size();
    }
    secs = SecondsSince(start);
    r.probe_legacy_ps = secs > 0 ? probe_iters / secs : 0;

    // Allocation-free cursor probe (what the operators now use).
    start = Clock::now();
    for (size_t i = 0; i < probe_iters; ++i) {
      size_t hits = 0;
      store.ProbeEach(0, probes[i % keys],
                      [&](size_t, const Tuple&) { ++hits; });
      r.checksum += hits;
    }
    secs = SecondsSince(start);
    r.probe_each_ps = secs > 0 ? probe_iters / secs : 0;

    // Caller-scratch probe (steady state: no allocation after the
    // first call grows the scratch).
    std::vector<size_t> scratch;
    start = Clock::now();
    for (size_t i = 0; i < probe_iters; ++i) {
      store.ProbeInto(0, probes[i % keys], &scratch);
      r.checksum += scratch.size();
    }
    secs = SecondsSince(start);
    r.probe_into_ps = secs > 0 ? probe_iters / secs : 0;

    // Vectorized batch probe. Arrival batches cluster on keys (same
    // generation, same source), modeled here as runs of kRunLen equal
    // keys packed into kDefaultCapacity-row batches; hash columns are
    // built once per cycle and the cycle replayed. ProbeBatch must
    // reproduce the per-row cursor's hits exactly — the CHECK below is
    // the result-multiset identity the batched path is specified by.
    constexpr size_t kRunLen = 8;
    std::vector<TupleBatch> cycle;
    size_t cycle_probes = 0;
    {
      TupleBatch building(TupleBatch::kDefaultCapacity);
      for (size_t k = 0; k < keys; ++k) {
        for (size_t rep = 0; rep < kRunLen; ++rep) {
          building.Append(Tuple({probes[k]}),
                          static_cast<int64_t>(cycle_probes++));
          if (building.full()) {
            building.SelectAll();
            building.BuildHashColumn(0);
            cycle.push_back(std::move(building));
            building = TupleBatch(TupleBatch::kDefaultCapacity);
          }
        }
      }
      if (!building.empty()) {
        building.SelectAll();
        building.BuildHashColumn(0);
        cycle.push_back(std::move(building));
      }
    }
    uint64_t each_cycle_hits = 0;
    for (const TupleBatch& b : cycle) {
      for (uint32_t row : b.selection()) {
        store.ProbeEach(0, b.tuple(row).at(0),
                        [&](size_t, const Tuple&) { ++each_cycle_hits; });
      }
    }
    const size_t replays =
        cycle_probes > 0 ? (probe_iters + cycle_probes - 1) / cycle_probes
                         : 0;
    uint64_t batch_hits = 0;
    start = Clock::now();
    for (size_t rep = 0; rep < replays; ++rep) {
      for (const TupleBatch& b : cycle) {
        store.ProbeBatch(0, b, 0, [&](uint32_t, size_t, const Tuple&) {
          ++batch_hits;
        });
      }
    }
    secs = SecondsSince(start);
    r.probe_batch_ps = secs > 0 ? replays * cycle_probes / secs : 0;
    PUNCTSAFE_CHECK(batch_hits == each_cycle_hits * replays)
        << "ProbeBatch diverged from ProbeEach: " << batch_hits << " vs "
        << each_cycle_hits << " x " << replays;
    r.checksum += batch_hits;
  }

  // Batched ingestion vs the identical per-row loop, over the
  // key-clustered arrival model the probe micro documents (same
  // generation, same source => runs of kRunLen equal keys). Both
  // timed loops consume pre-built rows; the rows are built fresh for
  // each sub-block so neither path inherits the other's cached key
  // hashes. InsertBatch's run-amortized index path (one bucket
  // resolution per same-key run) plus once-per-batch bookkeeping must
  // at least match tuple-at-a-time ingestion on this data — gated
  // hard in Main() for both key types.
  {
    constexpr size_t kRunLen = 8;
    auto clustered = [&] {
      std::vector<Tuple> cr;
      cr.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        size_t k = (i / kRunLen) % keys;
        Value key = string_keys ? Value("key-" + std::to_string(k))
                                : Value(static_cast<int64_t>(k));
        cr.push_back(Tuple({key, Value(static_cast<int64_t>(i))}));
      }
      return cr;
    };
    {
      std::vector<Tuple> row_feed = clustered();
      auto start = Clock::now();
      TupleStore store({0});
      for (const Tuple& t : row_feed) store.Insert(t);
      double secs = SecondsSince(start);
      r.insert_clustered_mps = secs > 0 ? n / secs : 0;
      r.checksum += store.live_count();
    }
    {
      std::vector<Tuple> batch_feed = clustered();
      auto start = Clock::now();
      TupleStore store({0});
      TupleBatch batch(TupleBatch::kDefaultCapacity);
      int64_t ts = 0;
      for (const Tuple& t : batch_feed) {
        batch.Append(t, ts++);
        if (batch.full()) {
          batch.SelectAll();
          store.InsertBatch(batch);
          batch.Clear();
        }
      }
      if (!batch.empty()) {
        batch.SelectAll();
        store.InsertBatch(batch);
      }
      double secs = SecondsSince(start);
      r.insert_batch_mps = secs > 0 ? n / secs : 0;
      r.checksum += store.live_count();
    }
  }

  // Interleaved insert/purge (compaction churn included).
  {
    auto start = Clock::now();
    TupleStore store({0});
    std::vector<size_t> slots;
    slots.reserve(rows.size());
    size_t ops = 0;
    for (size_t round = 0; round < 8; ++round) {
      slots.clear();
      for (const Tuple& t : rows) slots.push_back(store.Insert(t));
      store.PurgeSlots(slots);
      ops += 2 * rows.size();
    }
    double secs = SecondsSince(start);
    r.purge_ps = secs > 0 ? ops / secs : 0;
    r.checksum += store.live_count();
  }
  return r;
}

// ------------------------------------------------------ expansion micro

struct ExpandMicro {
  double row_ps = 0;    // arrivals/sec through per-row PushTuple
  double batch_ps = 0;  // arrivals/sec through the frontier PushBatch
};

// m=3 chain expansion end to end through MJoinOperator: T1 and T2 are
// pre-loaded with kPartners matching tuples per key, then a
// key-clustered T0 arrival sequence (runs of kRunLen equal keys, the
// probe micro's arrival model) is driven per-row through one operator
// instance and batch-at-a-time through an identically loaded twin.
// Each arrival expands through two hops and emits kPartners^2
// results. Both paths consume pre-staged input (flat tuples vs packed
// TupleBatches) so the comparison isolates expansion — staging cost
// is the insert micro's job — and the result counts must match
// exactly (the batched frontier's result-identity contract, covered
// in full by expansion_differential_test).
ExpandMicro RunExpandMicro(size_t keys, size_t arrivals, bool string_keys) {
  constexpr size_t kRunLen = 8;
  constexpr size_t kPartners = 2;
  bench::ChainFixture fx = bench::MakeChain(3);
  auto make_key = [&](size_t k) {
    return string_keys ? Value("key-" + std::to_string(k))
                       : Value(static_cast<int64_t>(k));
  };
  auto make_loaded_op = [&]() {
    std::vector<LocalInput> inputs;
    for (size_t s = 0; s < fx.query.num_streams(); ++s) {
      inputs.push_back({{s}, RawAvailableSchemes(fx.query, fx.schemes, s)});
    }
    MJoinConfig config;
    config.purge_policy = PurgePolicy::kNone;  // pure expansion, no sweeps
    auto op = MJoinOperator::Create(fx.query, inputs, config);
    PUNCTSAFE_CHECK_OK(op.status());
    // Partner state: kPartners tuples per key on each non-arrival
    // input. T2 before T1 so the load-time expansions die on the
    // first (empty) hop and nothing is emitted.
    int64_t ts = 0;
    for (size_t input : {size_t{2}, size_t{1}}) {
      for (size_t k = 0; k < keys; ++k) {
        for (size_t p = 0; p < kPartners; ++p) {
          (*op)->PushTuple(
              input,
              Tuple({make_key(k), Value(static_cast<int64_t>(p))}), ts++);
        }
      }
    }
    return std::move(op).ValueOrDie();
  };

  // Pre-staged arrival sequence, once as flat tuples and once packed
  // into kDefaultCapacity-row batches (identical rows, timestamps).
  std::vector<Tuple> row_feed;
  row_feed.reserve(arrivals);
  for (size_t i = 0; i < arrivals; ++i) {
    row_feed.push_back(Tuple({make_key((i / kRunLen) % keys),
                              Value(static_cast<int64_t>(i))}));
  }
  std::vector<TupleBatch> batch_feed;
  {
    TupleBatch building(TupleBatch::kDefaultCapacity);
    for (size_t i = 0; i < arrivals; ++i) {
      building.Append(row_feed[i], static_cast<int64_t>(1000000 + i));
      if (building.full()) {
        batch_feed.push_back(std::move(building));
        building = TupleBatch(TupleBatch::kDefaultCapacity);
      }
    }
    if (!building.empty()) batch_feed.push_back(std::move(building));
  }

  auto row_op = make_loaded_op();
  auto batch_op = make_loaded_op();
  uint64_t row_results = 0;
  uint64_t batch_results = 0;
  row_op->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) ++row_results;
  });
  batch_op->SetEmitter([&](const StreamElement& e) {
    if (e.is_tuple()) ++batch_results;
  });
  batch_op->SetBatchEmitter(
      [&](TupleBatch& b) { batch_results += b.size(); });

  ExpandMicro r;
  auto start = Clock::now();
  for (size_t i = 0; i < arrivals; ++i) {
    row_op->PushTuple(0, row_feed[i], static_cast<int64_t>(1000000 + i));
  }
  double secs = SecondsSince(start);
  r.row_ps = secs > 0 ? arrivals / secs : 0;

  start = Clock::now();
  for (TupleBatch& b : batch_feed) batch_op->PushBatch(0, b);
  secs = SecondsSince(start);
  r.batch_ps = secs > 0 ? arrivals / secs : 0;

  const uint64_t expected = arrivals * kPartners * kPartners;
  PUNCTSAFE_CHECK(row_results == expected && batch_results == expected)
      << "expansion micro result divergence: row=" << row_results
      << " batch=" << batch_results << " expected=" << expected;
  return r;
}

// ----------------------------------------------------------- end-to-end

struct RunStats {
  double seconds = 0;
  uint64_t results = 0;
  size_t final_live = 0;
};

RunStats RunSerialOnce(const bench::ChainFixture& fx, const PlanShape& shape,
                       const Trace& trace, bool observe = false,
                       size_t batch_size = 1) {
  ExecutorConfig config;
  config.observe.enabled = observe;
  config.batch_size = batch_size;
  auto exec = PlanExecutor::Create(fx.query, fx.schemes, shape, config);
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  RunStats stats;
  stats.seconds = SecondsSince(start);
  stats.results = (*exec)->num_results();
  stats.final_live = (*exec)->TotalLiveTuples();
  return stats;
}

RunStats RunParallelOnce(const bench::ChainFixture& fx, const PlanShape& shape,
                         const Trace& trace, size_t shards,
                         bool observe = false) {
  ExecutorConfig config;
  config.shards = shards;
  config.observe.enabled = observe;
  // The emit-staging granularity the pipelined runtime ran with before
  // the knob existed (the former hard-coded kEmitFlushBatch).
  config.batch_size = 128;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTraceParallel(exec.ValueOrDie().get(), trace));
  RunStats stats;
  stats.seconds = SecondsSince(start);
  stats.results = (*exec)->num_results();
  stats.final_live = (*exec)->TotalLiveTuples();
  (*exec)->Stop();
  return stats;
}

}  // namespace

int Main(int argc, char** argv) {
  size_t store_tuples = 20000;
  size_t keys = 512;
  size_t probe_iters = 400000;
  size_t generations = 150;
  size_t iters = 3;
  std::string baseline_path;
  double min_ratio = -1;  // resolved below: flag > env > 0.75
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--store-tuples") == 0) {
      store_tuples = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--keys") == 0) {
      keys = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--probe-iters") == 0) {
      probe_iters = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--generations") == 0) {
      generations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--min-ratio") == 0) {
      min_ratio = std::strtod(argv[i + 1], nullptr);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'; flags: --store-tuples N --keys N "
                   "--probe-iters N --generations N --iters N "
                   "--baseline FILE --min-ratio R\n",
                   argv[i]);
      return 2;
    }
  }

  MicroResult int_micro = RunMicro(store_tuples, keys, probe_iters, false);
  MicroResult str_micro = RunMicro(store_tuples, keys, probe_iters, true);

  // Batched ingestion must not lose to the per-row loop over the same
  // clustered rows (this pins the string-key regression the
  // run-amortized InsertBatch fixed); 0.9 floor = run-to-run jitter
  // headroom, not license to regress.
  auto check_insert_gate = [](const char* kind, const MicroResult& m) {
    PUNCTSAFE_CHECK(m.insert_batch_mps >= 0.9 * m.insert_clustered_mps)
        << kind << "-key InsertBatch slower than per-row Insert on "
        << "identical clustered rows: " << m.insert_batch_mps << "/s vs "
        << m.insert_clustered_mps << "/s";
  };
  check_insert_gate("int", int_micro);
  check_insert_gate("str", str_micro);

  // Best-of-iters per side, the same convention as the end-to-end
  // runs (rates are max-estimators; the interesting signal is what
  // the path can do, not what the scheduler did to one run).
  ExpandMicro int_expand, str_expand;
  auto keep_best_expand = [](ExpandMicro& best, const ExpandMicro& e) {
    best.row_ps = std::max(best.row_ps, e.row_ps);
    best.batch_ps = std::max(best.batch_ps, e.batch_ps);
  };
  for (size_t i = 0; i < iters; ++i) {
    keep_best_expand(int_expand, RunExpandMicro(keys, probe_iters, false));
    keep_best_expand(str_expand, RunExpandMicro(keys, probe_iters, true));
  }

  bench::ChainFixture fx = bench::MakeChain(3);
  PlanShape shape = PlanShape::SingleMJoin(3);
  CoveringTraceConfig tconfig;
  tconfig.num_generations = generations;
  tconfig.values_per_generation = 8;
  tconfig.tuples_per_generation = 60;
  Trace trace = MakeCoveringTrace(fx.query, fx.schemes, tconfig);

  // Observe-on runs ride in the same loop as observe-off ones
  // (interleaved best-of, the bench_arena pattern) so thermal/clock
  // drift hits both sides of the overhead ratio equally; the
  // observability contract is observe_ratio_* >= ~0.97.
  RunStats serial, shard1, shard2, serial_obs, shard2_obs;
  // The ExecutorConfig::batch_size sweep: how far batched ingestion
  // moves serial end-to-end throughput (batch 1 = the tuple-at-a-time
  // baseline; results must be identical at every size).
  const size_t kBatchSweep[] = {1, 32, 128, 512};
  RunStats serial_batched[4];
  auto keep_best = [](RunStats& best, const RunStats& s, size_t i) {
    if (i == 0 || s.seconds < best.seconds) best = s;
  };
  RunStats serial_obs_b128;
  for (size_t i = 0; i < iters; ++i) {
    keep_best(serial, RunSerialOnce(fx, shape, trace), i);
    keep_best(serial_obs, RunSerialOnce(fx, shape, trace, true), i);
    for (size_t b = 0; b < 4; ++b) {
      keep_best(serial_batched[b],
                RunSerialOnce(fx, shape, trace, false, kBatchSweep[b]), i);
    }
    // Observe-on at batch 128: per-batch sampling (two clock reads per
    // batch + sampled per-tuple latency) instead of two reads/tuple.
    keep_best(serial_obs_b128,
              RunSerialOnce(fx, shape, trace, true, 128), i);
    keep_best(shard1, RunParallelOnce(fx, shape, trace, 1), i);
    keep_best(shard2, RunParallelOnce(fx, shape, trace, 2), i);
    keep_best(shard2_obs, RunParallelOnce(fx, shape, trace, 2, true), i);
  }

  PUNCTSAFE_CHECK(shard1.results == serial.results &&
                  shard2.results == serial.results)
      << "executors disagree: serial=" << serial.results
      << " shard1=" << shard1.results << " shard2=" << shard2.results;
  PUNCTSAFE_CHECK(serial_obs.results == serial.results &&
                  serial_obs_b128.results == serial.results &&
                  shard2_obs.results == serial.results)
      << "observability changed results: serial=" << serial.results
      << " serial_obs=" << serial_obs.results
      << " serial_obs_b128=" << serial_obs_b128.results
      << " shard2_obs=" << shard2_obs.results;
  for (size_t b = 0; b < 4; ++b) {
    PUNCTSAFE_CHECK(serial_batched[b].results == serial.results)
        << "batched ingestion changed results at batch_size="
        << kBatchSweep[b] << ": " << serial_batched[b].results << " vs "
        << serial.results;
  }

  std::ostringstream json;
  char buf[256];
  auto emit = [&](const char* key, double v, bool comma = true) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.0f%s\n", key, v,
                  comma ? "," : "");
    json << buf;
  };
  json << "{\n";
  json << "  \"bench\": \"hot_path\",\n";
  json << "  \"store_tuples\": " << store_tuples << ",\n";
  json << "  \"keys\": " << keys << ",\n";
  json << "  \"probe_iters\": " << probe_iters << ",\n";
  json << "  \"events\": " << trace.size() << ",\n";
  json << "  \"hardware_threads\": " << bench::HardwareThreads()
       << ",\n";
  json << "  \"simd_dispatch\": \"" << simd::kDispatchName << "\",\n";
  emit("int_insert_per_sec", int_micro.insert_mps);
  emit("int_insert_clustered_per_sec", int_micro.insert_clustered_mps);
  emit("int_insert_batch_per_sec", int_micro.insert_batch_mps);
  emit("int_probe_legacy_per_sec", int_micro.probe_legacy_ps);
  emit("int_probe_each_per_sec", int_micro.probe_each_ps);
  emit("int_probe_into_per_sec", int_micro.probe_into_ps);
  emit("int_probe_batch_per_sec", int_micro.probe_batch_ps);
  emit("int_purge_ops_per_sec", int_micro.purge_ps);
  emit("str_insert_per_sec", str_micro.insert_mps);
  emit("str_insert_clustered_per_sec", str_micro.insert_clustered_mps);
  emit("str_insert_batch_per_sec", str_micro.insert_batch_mps);
  emit("str_probe_legacy_per_sec", str_micro.probe_legacy_ps);
  emit("str_probe_each_per_sec", str_micro.probe_each_ps);
  emit("str_probe_into_per_sec", str_micro.probe_into_ps);
  emit("str_probe_batch_per_sec", str_micro.probe_batch_ps);
  emit("str_purge_ops_per_sec", str_micro.purge_ps);
  emit("int_expand_row_per_sec", int_expand.row_ps);
  emit("int_expand_batch_per_sec", int_expand.batch_ps);
  emit("str_expand_row_per_sec", str_expand.row_ps);
  emit("str_expand_batch_per_sec", str_expand.batch_ps);
  // Batch-over-row expansion speedups on the m=3 chain (the batched
  // frontier's headline numbers; >= 2x on key-clustered arrivals).
  std::snprintf(buf, sizeof(buf),
                "  \"int_expand_batch_speedup\": %.3f,\n",
                int_expand.row_ps > 0 ? int_expand.batch_ps / int_expand.row_ps
                                      : 0.0);
  json << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"str_expand_batch_speedup\": %.3f,\n",
                str_expand.row_ps > 0 ? str_expand.batch_ps / str_expand.row_ps
                                      : 0.0);
  json << buf;
  emit("serial_events_per_sec",
       serial.seconds > 0 ? trace.size() / serial.seconds : 0);
  for (size_t b = 0; b < 4; ++b) {
    std::snprintf(buf, sizeof(buf),
                  "  \"serial_batch%zu_events_per_sec\": %.0f,\n",
                  kBatchSweep[b],
                  serial_batched[b].seconds > 0
                      ? trace.size() / serial_batched[b].seconds
                      : 0.0);
    json << buf;
  }
  emit("pipelined_events_per_sec",
       shard1.seconds > 0 ? trace.size() / shard1.seconds : 0);
  emit("sharded2_events_per_sec",
       shard2.seconds > 0 ? trace.size() / shard2.seconds : 0);
  emit("serial_observed_events_per_sec",
       serial_obs.seconds > 0 ? trace.size() / serial_obs.seconds : 0);
  emit("sharded2_observed_events_per_sec",
       shard2_obs.seconds > 0 ? trace.size() / shard2_obs.seconds : 0);
  // observe-on / observe-off throughput ratios (1.0 = free; the
  // overhead budget in docs/OBSERVABILITY.md is >= 0.97).
  std::snprintf(buf, sizeof(buf),
                "  \"observe_ratio_serial\": %.3f,\n",
                serial_obs.seconds > 0 && serial.seconds > 0
                    ? serial.seconds / serial_obs.seconds
                    : 0.0);
  json << buf;
  // Observe-on vs observe-off at batch 128 on both sides: what the
  // per-batch sampling hooks cost when batching is actually on.
  std::snprintf(
      buf, sizeof(buf), "  \"observe_ratio_serial_batched\": %.3f,\n",
      serial_obs_b128.seconds > 0 && serial_batched[2].seconds > 0
          ? serial_batched[2].seconds / serial_obs_b128.seconds
          : 0.0);
  json << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"observe_ratio_sharded2\": %.3f,\n",
                shard2_obs.seconds > 0 && shard2.seconds > 0
                    ? shard2.seconds / shard2_obs.seconds
                    : 0.0);
  json << buf;
  std::snprintf(buf, sizeof(buf), "  \"results\": %llu,\n",
                static_cast<unsigned long long>(serial.results));
  json << buf;
  std::snprintf(buf, sizeof(buf), "  \"checksum\": %llu\n",
                static_cast<unsigned long long>(int_micro.checksum +
                                                str_micro.checksum));
  json << buf;
  json << "}\n";
  std::fputs(json.str().c_str(), stdout);

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    // Gate on the micro probe paths (stable across runs); end-to-end
    // numbers are informational — they depend on scheduler noise and
    // core count too much for a hard fail.
    if (!bench::CheckBaselineRates(
            ss.str(),
            {{"int_probe_each_per_sec", int_micro.probe_each_ps},
             {"str_probe_each_per_sec", str_micro.probe_each_ps},
             {"int_probe_batch_per_sec", int_micro.probe_batch_ps},
             {"str_probe_batch_per_sec", str_micro.probe_batch_ps},
             {"int_insert_batch_per_sec", int_micro.insert_batch_mps},
             {"str_insert_batch_per_sec", str_micro.insert_batch_mps},
             {"int_expand_batch_per_sec", int_expand.batch_ps},
             {"str_expand_batch_per_sec", str_expand.batch_ps},
             {"int_purge_ops_per_sec", int_micro.purge_ps}},
            bench::ResolveMinRatio(min_ratio))) {
      return 1;
    }
    // Parallel-vs-serial throughput only means something with real
    // cores behind it; on hardware_threads == 1 the gate self-skips.
    if (!bench::CheckParallelSpeedup(
            "hot_path pipelined-vs-serial",
            shard1.seconds > 0 ? serial.seconds / shard1.seconds : 0.0,
            0.5)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace punctsafe

int main(int argc, char** argv) { return punctsafe::Main(argc, argv); }
