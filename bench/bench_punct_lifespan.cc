// Experiment E10 (paper Section 5.1): punctuation lifespans on the
// network-monitoring workload with recycling flow ids. Without
// lifespans the punctuation store's size tracks every id ever
// punctuated AND stale punctuations wrongly exclude revived ids
// (watch `results` crater); with the recommended lifespan the store
// stays bounded by the ids in flight and the answer is complete —
// the TCP sequence-number story made measurable.

#include "bench_util.h"
#include "workload/network.h"

namespace punctsafe {
namespace {

void BM_PunctuationLifespan(benchmark::State& state) {
  NetworkConfig config;
  config.num_flows = static_cast<size_t>(state.range(0));
  config.id_space = 64;
  Trace trace = NetworkWorkload::Generate(config);

  QueryRegister reg;
  PUNCTSAFE_CHECK_OK(NetworkWorkload::Setup(&reg));
  auto q = ContinuousJoinQuery::Create(reg.catalog(),
                                       NetworkWorkload::QueryStreams(),
                                       NetworkWorkload::QueryPredicates());
  PUNCTSAFE_CHECK_OK(q.status());

  ExecutorConfig exec_config;
  if (state.range(1) == 1) {
    exec_config.mjoin.punctuation_lifespan =
        NetworkWorkload::RecommendedLifespan(config);
  }
  bench::RunTraceAndRecord(*q, reg.schemes(), PlanShape::SingleMJoin(3),
                           trace, exec_config, state);
}
BENCHMARK(BM_PunctuationLifespan)
    ->ArgNames({"flows", "lifespan"})
    ->Args({500, 1})
    ->Args({2000, 1})
    ->Args({8000, 1})
    ->Args({500, 0})
    ->Args({2000, 0})
    ->Args({8000, 0});

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
