// Hash-partitioned intra-operator parallelism on a hot 3-way MJoin:
// one operator, all streams joined on a shared key, so the whole
// workload lands on a single logical operator and pipeline parallelism
// alone cannot help — the shard router is the only source of
// parallelism. Compares serial, pipelined shards=1, and partitioned
// shards in {2, 4}, and reports per-shard state high-water marks (from
// GroupSnapshots) so the bounded-state claim stays checkable per
// shard. Emits a single JSON object (checked-in baseline:
// BENCH_partitioned.json, experiment E15 in EXPERIMENTS.md).
//
// Usage: bench_partitioned_join [--streams N] [--generations G]
//                               [--iters I] [--queue-capacity C]
//
// Note: sharding needs one hardware thread per shard to pay off; the
// JSON records hardware_threads so a 1-core container's numbers are
// interpretable. On >= 4 cores the target is shards=4 >= 2x over the
// pipelined shards=1 run.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/parallel_executor.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

struct RunStats {
  double seconds = 0;
  uint64_t results = 0;
  size_t state_hw = 0;
  size_t final_live = 0;
  size_t num_shards = 1;
  std::vector<size_t> shard_state_hw;
};

using Clock = std::chrono::steady_clock;

RunStats RunSerialOnce(const bench::ChainFixture& fx, const PlanShape& shape,
                       const Trace& trace) {
  auto exec = PlanExecutor::Create(fx.query, fx.schemes, shape, {});
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  auto elapsed = std::chrono::duration<double>(Clock::now() - start);
  RunStats stats;
  stats.seconds = elapsed.count();
  stats.results = (*exec)->num_results();
  stats.state_hw = (*exec)->tuple_high_water();
  stats.final_live = (*exec)->TotalLiveTuples();
  return stats;
}

RunStats RunPartitionedOnce(const bench::ChainFixture& fx,
                            const PlanShape& shape, const Trace& trace,
                            size_t queue_capacity, size_t shards) {
  ExecutorConfig config;
  config.queue_capacity = queue_capacity;
  config.shards = shards;
  // The emit-staging granularity the pipelined runtime ran with before
  // the knob existed (the former hard-coded kEmitFlushBatch).
  config.batch_size = 128;
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTraceParallel(exec.ValueOrDie().get(), trace));
  auto elapsed = std::chrono::duration<double>(Clock::now() - start);
  RunStats stats;
  stats.seconds = elapsed.count();
  stats.results = (*exec)->num_results();
  stats.state_hw = (*exec)->tuple_high_water();
  stats.final_live = (*exec)->TotalLiveTuples();
  auto snaps = (*exec)->GroupSnapshots();
  PUNCTSAFE_CHECK(!snaps.empty());
  stats.num_shards = snaps[0].num_shards;
  stats.shard_state_hw = snaps[0].shard_high_water;
  (*exec)->Stop();
  return stats;
}

template <typename Fn>
RunStats Best(size_t iters, const Fn& run) {
  RunStats best;
  for (size_t i = 0; i < iters; ++i) {
    RunStats stats = run();
    if (i == 0 || stats.seconds < best.seconds) best = stats;
  }
  return best;
}

void PrintRun(const char* name, const RunStats& s, size_t events,
              bool trailing_comma) {
  std::printf(
      "  \"%s\": {\"seconds\": %.6f, \"events_per_sec\": %.0f, "
      "\"results\": %llu, \"state_hw\": %zu, \"final_live\": %zu, "
      "\"shards\": %zu, \"shard_state_hw\": [",
      name, s.seconds, s.seconds > 0 ? events / s.seconds : 0.0,
      static_cast<unsigned long long>(s.results), s.state_hw, s.final_live,
      s.num_shards);
  for (size_t i = 0; i < s.shard_state_hw.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", s.shard_state_hw[i]);
  }
  std::printf("]}%s\n", trailing_comma ? "," : "");
}

int Main(int argc, char** argv) {
  size_t streams = 3;
  size_t generations = 300;
  size_t iters = 3;
  size_t queue_capacity = 1024;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--streams") == 0) {
      streams = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--generations") == 0) {
      generations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      queue_capacity = std::strtoull(argv[i + 1], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'; flags: --streams N --generations N "
                   "--iters N --queue-capacity N\n",
                   argv[i]);
      return 2;
    }
  }

  // A single n-way MJoin on the shared key: every predicate sits in
  // one attribute equivalence class, so the operator partitions.
  bench::ChainFixture fx = bench::MakeChain(streams);
  PlanShape shape = PlanShape::SingleMJoin(streams);

  CoveringTraceConfig tconfig;
  tconfig.num_generations = generations;
  tconfig.values_per_generation = 8;
  tconfig.tuples_per_generation = 60;
  Trace trace = MakeCoveringTrace(fx.query, fx.schemes, tconfig);

  RunStats serial =
      Best(iters, [&] { return RunSerialOnce(fx, shape, trace); });
  RunStats shard1 = Best(iters, [&] {
    return RunPartitionedOnce(fx, shape, trace, queue_capacity, 1);
  });
  RunStats shard2 = Best(iters, [&] {
    return RunPartitionedOnce(fx, shape, trace, queue_capacity, 2);
  });
  RunStats shard4 = Best(iters, [&] {
    return RunPartitionedOnce(fx, shape, trace, queue_capacity, 4);
  });

  for (const RunStats* s : {&shard1, &shard2, &shard4}) {
    PUNCTSAFE_CHECK(s->results == serial.results)
        << "executors disagree: serial=" << serial.results
        << " shards=" << s->num_shards << " -> " << s->results;
    PUNCTSAFE_CHECK(s->final_live == serial.final_live)
        << "final state diverged at shards=" << s->num_shards;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"partitioned_join\",\n");
  std::printf("  \"plan\": \"single_mjoin\",\n");
  std::printf("  \"chain_streams\": %zu,\n", streams);
  std::printf("  \"events\": %zu,\n", trace.size());
  std::printf("  \"queue_capacity\": %zu,\n", queue_capacity);
  std::printf("  \"hardware_threads\": %u,\n",
              bench::HardwareThreads());
  PrintRun("serial", serial, trace.size(), /*trailing_comma=*/true);
  PrintRun("pipelined_shards1", shard1, trace.size(), /*trailing_comma=*/true);
  PrintRun("partitioned_shards2", shard2, trace.size(),
           /*trailing_comma=*/true);
  PrintRun("partitioned_shards4", shard4, trace.size(),
           /*trailing_comma=*/true);
  std::printf("  \"speedup_shards2_vs_shards1\": %.3f,\n",
              shard2.seconds > 0 ? shard1.seconds / shard2.seconds : 0.0);
  std::printf("  \"speedup_shards4_vs_shards1\": %.3f,\n",
              shard4.seconds > 0 ? shard1.seconds / shard4.seconds : 0.0);
  std::printf("  \"speedup_shards4_vs_serial\": %.3f\n",
              shard4.seconds > 0 ? serial.seconds / shard4.seconds : 0.0);
  std::printf("}\n");

  // Sharding must actually pay on hosts with the cores for it; on
  // hardware_threads == 1 the ratio carries no signal and the gate
  // self-skips (see bench_util.h).
  if (!bench::CheckParallelSpeedup(
          "partitioned_join shards2-vs-shards1",
          shard2.seconds > 0 ? shard1.seconds / shard2.seconds : 0.0,
          1.05)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace punctsafe

int main(int argc, char** argv) { return punctsafe::Main(argc, argv); }
