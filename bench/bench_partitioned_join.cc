// Hash-partitioned intra-operator parallelism on a hot 3-way MJoin:
// one operator, all streams joined on a shared key, so the whole
// workload lands on a single logical operator and pipeline parallelism
// alone cannot help — the shard router is the only source of
// parallelism. Compares serial, pipelined shards=1, and partitioned
// shards in {2, 4}, and reports per-shard state high-water marks (from
// GroupSnapshots) so the bounded-state claim stays checkable per
// shard. Emits a single JSON object (checked-in baseline:
// BENCH_partitioned.json, experiment E15 in EXPERIMENTS.md).
//
// A second, zipf-skewed trace (--zipf, default 1.2) drives the
// rebalancer comparison: serial vs static shards=4 (rebalance
// tracking on, migrations off — per-shard routed/stall counters with
// a frozen map) vs adaptively rebalanced shards=4. The JSON records
// per-shard routed/stall counters, migrations, tuples moved, the
// final skew ratio, and speedup_rebalanced_vs_serial /
// speedup_rebalanced_vs_static (experiment E15).
//
// Usage: bench_partitioned_join [--streams N] [--generations G]
//                               [--iters I] [--queue-capacity C]
//                               [--zipf S]
//
// Note: sharding needs one hardware thread per shard to pay off; the
// JSON records hardware_threads so a 1-core container's numbers are
// interpretable. On >= 4 cores the target is shards=4 >= 2x over the
// pipelined shards=1 run and rebalanced > serial on the skewed trace.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/parallel_executor.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

struct RunStats {
  double seconds = 0;
  uint64_t results = 0;
  size_t state_hw = 0;
  size_t final_live = 0;
  size_t num_shards = 1;
  std::vector<size_t> shard_state_hw;
  // Rebalance-tracking extras (zero / empty unless rebalance.enabled).
  std::vector<uint64_t> shard_routed;
  std::vector<uint64_t> shard_stalls;
  uint64_t migrations = 0;
  uint64_t tuples_moved = 0;
  double skew = 1.0;
};

using Clock = std::chrono::steady_clock;

RunStats RunSerialOnce(const bench::ChainFixture& fx, const PlanShape& shape,
                       const Trace& trace) {
  auto exec = PlanExecutor::Create(fx.query, fx.schemes, shape, {});
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  auto elapsed = std::chrono::duration<double>(Clock::now() - start);
  RunStats stats;
  stats.seconds = elapsed.count();
  stats.results = (*exec)->num_results();
  stats.state_hw = (*exec)->tuple_high_water();
  stats.final_live = (*exec)->TotalLiveTuples();
  return stats;
}

RunStats RunPartitionedOnce(const bench::ChainFixture& fx,
                            const PlanShape& shape, const Trace& trace,
                            ExecutorConfig config) {
  auto exec = ParallelExecutor::Create(fx.query, fx.schemes, shape, config);
  PUNCTSAFE_CHECK_OK(exec.status());
  auto start = Clock::now();
  PUNCTSAFE_CHECK_OK(FeedTraceParallel(exec.ValueOrDie().get(), trace));
  auto elapsed = std::chrono::duration<double>(Clock::now() - start);
  RunStats stats;
  stats.seconds = elapsed.count();
  stats.results = (*exec)->num_results();
  stats.state_hw = (*exec)->tuple_high_water();
  stats.final_live = (*exec)->TotalLiveTuples();
  stats.migrations = (*exec)->rebalance_migrations();
  stats.tuples_moved = (*exec)->rebalance_tuples_moved();
  auto snaps = (*exec)->GroupSnapshots();
  PUNCTSAFE_CHECK(!snaps.empty());
  stats.num_shards = snaps[0].num_shards;
  stats.shard_state_hw = snaps[0].shard_high_water;
  stats.shard_routed = snaps[0].shard_routed;
  stats.shard_stalls = snaps[0].shard_stalls;
  stats.skew = snaps[0].skew;
  (*exec)->Stop();
  return stats;
}

ExecutorConfig PartitionedConfig(size_t queue_capacity, size_t shards) {
  ExecutorConfig config;
  config.queue_capacity = queue_capacity;
  config.shards = shards;
  // The emit-staging granularity the pipelined runtime ran with before
  // the knob existed (the former hard-coded kEmitFlushBatch).
  config.batch_size = 128;
  return config;
}

template <typename Fn>
RunStats Best(size_t iters, const Fn& run) {
  RunStats best;
  for (size_t i = 0; i < iters; ++i) {
    RunStats stats = run();
    if (i == 0 || stats.seconds < best.seconds) best = stats;
  }
  return best;
}

void PrintRun(const char* name, const RunStats& s, size_t events,
              bool trailing_comma) {
  std::printf(
      "  \"%s\": {\"seconds\": %.6f, \"events_per_sec\": %.0f, "
      "\"results\": %llu, \"state_hw\": %zu, \"final_live\": %zu, "
      "\"shards\": %zu, \"shard_state_hw\": [",
      name, s.seconds, s.seconds > 0 ? events / s.seconds : 0.0,
      static_cast<unsigned long long>(s.results), s.state_hw, s.final_live,
      s.num_shards);
  for (size_t i = 0; i < s.shard_state_hw.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", s.shard_state_hw[i]);
  }
  std::printf("]");
  if (!s.shard_routed.empty()) {
    std::printf(", \"shard_routed\": [");
    for (size_t i = 0; i < s.shard_routed.size(); ++i) {
      std::printf("%s%llu", i ? ", " : "",
                  static_cast<unsigned long long>(s.shard_routed[i]));
    }
    std::printf("], \"shard_stalls\": [");
    for (size_t i = 0; i < s.shard_stalls.size(); ++i) {
      std::printf("%s%llu", i ? ", " : "",
                  static_cast<unsigned long long>(s.shard_stalls[i]));
    }
    std::printf(
        "], \"skew\": %.3f, \"migrations\": %llu, \"tuples_moved\": %llu",
        s.skew, static_cast<unsigned long long>(s.migrations),
        static_cast<unsigned long long>(s.tuples_moved));
  }
  std::printf("}%s\n", trailing_comma ? "," : "");
}

int Main(int argc, char** argv) {
  size_t streams = 3;
  size_t generations = 300;
  size_t iters = 3;
  size_t queue_capacity = 1024;
  double zipf = 1.2;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--streams") == 0) {
      streams = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--generations") == 0) {
      generations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      queue_capacity = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--zipf") == 0) {
      zipf = std::strtod(argv[i + 1], nullptr);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'; flags: --streams N --generations N "
                   "--iters N --queue-capacity N --zipf S\n",
                   argv[i]);
      return 2;
    }
  }

  // A single n-way MJoin on the shared key: every predicate sits in
  // one attribute equivalence class, so the operator partitions.
  bench::ChainFixture fx = bench::MakeChain(streams);
  PlanShape shape = PlanShape::SingleMJoin(streams);

  CoveringTraceConfig tconfig;
  tconfig.num_generations = generations;
  tconfig.values_per_generation = 8;
  tconfig.tuples_per_generation = 60;
  Trace trace = MakeCoveringTrace(fx.query, fx.schemes, tconfig);

  // The skewed trace: same generation structure, zipf-ranked draws
  // within each generation's value pool, so a handful of hot keys
  // dominate shard routing.
  CoveringTraceConfig zconfig = tconfig;
  zconfig.zipf_s = zipf;
  Trace zipf_trace = MakeCoveringTrace(fx.query, fx.schemes, zconfig);

  RunStats serial =
      Best(iters, [&] { return RunSerialOnce(fx, shape, trace); });
  RunStats shard1 = Best(iters, [&] {
    return RunPartitionedOnce(fx, shape, trace,
                              PartitionedConfig(queue_capacity, 1));
  });
  RunStats shard2 = Best(iters, [&] {
    return RunPartitionedOnce(fx, shape, trace,
                              PartitionedConfig(queue_capacity, 2));
  });
  RunStats shard4 = Best(iters, [&] {
    return RunPartitionedOnce(fx, shape, trace,
                              PartitionedConfig(queue_capacity, 4));
  });

  // Skewed legs. "Static" keeps the initial balanced ShardMap but
  // tracks routing pressure (rebalance enabled, controller interval 0
  // = never fires) so the JSON shows the skew the rebalancer sees;
  // "rebalanced" lets the controller migrate hot slots away.
  RunStats serial_zipf =
      Best(iters, [&] { return RunSerialOnce(fx, shape, zipf_trace); });
  ExecutorConfig static_config = PartitionedConfig(queue_capacity, 4);
  static_config.rebalance.enabled = true;
  static_config.rebalance.interval_punctuations = 0;
  RunStats static_zipf = Best(
      iters, [&] { return RunPartitionedOnce(fx, shape, zipf_trace,
                                             static_config); });
  ExecutorConfig rebal_config = PartitionedConfig(queue_capacity, 4);
  rebal_config.rebalance.enabled = true;
  // The zipf trace's hot slot drifts per generation, so every check
  // window shows skew: the default drift backoff
  // (RebalanceConfig::max_backoff_windows) is what keeps the
  // controller from paying a quiesce barrier per window chasing it.
  rebal_config.rebalance.interval_punctuations = 16;
  rebal_config.rebalance.skew_threshold = 1.2;
  rebal_config.rebalance.min_routed = 256;
  RunStats rebal_zipf = Best(
      iters, [&] { return RunPartitionedOnce(fx, shape, zipf_trace,
                                             rebal_config); });

  for (const RunStats* s : {&shard1, &shard2, &shard4}) {
    PUNCTSAFE_CHECK(s->results == serial.results)
        << "executors disagree: serial=" << serial.results
        << " shards=" << s->num_shards << " -> " << s->results;
    PUNCTSAFE_CHECK(s->final_live == serial.final_live)
        << "final state diverged at shards=" << s->num_shards;
  }
  for (const RunStats* s : {&static_zipf, &rebal_zipf}) {
    PUNCTSAFE_CHECK(s->results == serial_zipf.results)
        << "zipf executors disagree: serial=" << serial_zipf.results
        << " got " << s->results;
    PUNCTSAFE_CHECK(s->final_live == serial_zipf.final_live)
        << "zipf final state diverged";
  }
  PUNCTSAFE_CHECK(static_zipf.migrations == 0)
      << "static leg must not migrate";
  PUNCTSAFE_CHECK(rebal_zipf.migrations > 0)
      << "rebalanced leg saw no migrations: the zipf trace (s=" << zipf
      << ") did not trip the skew threshold";

  std::printf("{\n");
  std::printf("  \"bench\": \"partitioned_join\",\n");
  std::printf("  \"plan\": \"single_mjoin\",\n");
  std::printf("  \"chain_streams\": %zu,\n", streams);
  std::printf("  \"events\": %zu,\n", trace.size());
  std::printf("  \"queue_capacity\": %zu,\n", queue_capacity);
  std::printf("  \"hardware_threads\": %u,\n",
              bench::HardwareThreads());
  PrintRun("serial", serial, trace.size(), /*trailing_comma=*/true);
  PrintRun("pipelined_shards1", shard1, trace.size(), /*trailing_comma=*/true);
  PrintRun("partitioned_shards2", shard2, trace.size(),
           /*trailing_comma=*/true);
  PrintRun("partitioned_shards4", shard4, trace.size(),
           /*trailing_comma=*/true);
  std::printf("  \"zipf_s\": %.2f,\n", zipf);
  std::printf("  \"zipf_events\": %zu,\n", zipf_trace.size());
  PrintRun("serial_zipf", serial_zipf, zipf_trace.size(),
           /*trailing_comma=*/true);
  PrintRun("static_zipf_shards4", static_zipf, zipf_trace.size(),
           /*trailing_comma=*/true);
  PrintRun("rebalanced_zipf_shards4", rebal_zipf, zipf_trace.size(),
           /*trailing_comma=*/true);
  std::printf("  \"speedup_shards2_vs_shards1\": %.3f,\n",
              shard2.seconds > 0 ? shard1.seconds / shard2.seconds : 0.0);
  std::printf("  \"speedup_shards4_vs_shards1\": %.3f,\n",
              shard4.seconds > 0 ? shard1.seconds / shard4.seconds : 0.0);
  std::printf("  \"speedup_shards4_vs_serial\": %.3f,\n",
              shard4.seconds > 0 ? serial.seconds / shard4.seconds : 0.0);
  std::printf(
      "  \"speedup_rebalanced_vs_serial\": %.3f,\n",
      rebal_zipf.seconds > 0 ? serial_zipf.seconds / rebal_zipf.seconds
                             : 0.0);
  std::printf(
      "  \"speedup_rebalanced_vs_static\": %.3f\n",
      rebal_zipf.seconds > 0 ? static_zipf.seconds / rebal_zipf.seconds
                             : 0.0);
  std::printf("}\n");

  // Sharding must actually pay on hosts with the cores for it; on
  // hardware_threads == 1 the ratio carries no signal and the gate
  // self-skips (see bench_util.h).
  if (!bench::CheckParallelSpeedup(
          "partitioned_join shards2-vs-shards1",
          shard2.seconds > 0 ? shard1.seconds / shard2.seconds : 0.0,
          1.05)) {
    return 1;
  }
  // The rebalanced-vs-serial target assumes a thread per shard; below
  // 4 hardware threads the 4-shard runtime time-slices and the ratio
  // carries no signal.
  if (bench::HardwareThreads() >= 4) {
    if (!bench::CheckParallelSpeedup(
            "partitioned_join rebalanced-vs-serial",
            rebal_zipf.seconds > 0
                ? serial_zipf.seconds / rebal_zipf.seconds
                : 0.0,
            1.0)) {
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "partitioned_join rebalanced-vs-serial: SKIP ratio gate "
                 "(hardware_threads < 4)\n");
  }
  return 0;
}

}  // namespace
}  // namespace punctsafe

int main(int argc, char** argv) { return punctsafe::Main(argc, argv); }
