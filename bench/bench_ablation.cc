// Experiment E13 (ablation): the DESIGN.md design choices isolated on
// the auction workload —
//  * drop-on-arrival (eager removability test before storing a new
//    tuple, "purging future tuples" §5.1) on/off;
//  * punctuation purgeability (§5.1 retirement of obsolete
//    punctuations) on/off;
//  * punctuation propagation machinery on/off (irrelevant for the
//    single operator, costed anyway — shows its overhead is the
//    pending bookkeeping only).
// Each knob changes memory/throughput, never results.

#include "bench_util.h"
#include "workload/auction.h"

namespace punctsafe {
namespace {

void BM_Ablation(benchmark::State& state) {
  AuctionConfig config;
  config.num_items = 1500;
  config.bids_per_item = 8;
  config.max_open = 48;
  // Bids often arrive after the item punctuation: drop-on-arrival has
  // something to do.
  Trace trace = AuctionWorkload::Generate(config);

  QueryRegister reg;
  PUNCTSAFE_CHECK_OK(AuctionWorkload::Setup(&reg));
  auto q = ContinuousJoinQuery::Create(reg.catalog(),
                                       AuctionWorkload::QueryStreams(),
                                       AuctionWorkload::QueryPredicates());
  PUNCTSAFE_CHECK_OK(q.status());

  ExecutorConfig exec_config;
  exec_config.mjoin.drop_excluded_arrivals = state.range(0) != 0;
  exec_config.mjoin.purge_punctuations = state.range(1) != 0;
  exec_config.mjoin.propagate_punctuations = state.range(2) != 0;
  bench::RunTraceAndRecord(*q, reg.schemes(), PlanShape::SingleMJoin(2),
                           trace, exec_config, state);

  // Extra counters: how much each mechanism actually did.
  auto exec = PlanExecutor::Create(*q, reg.schemes(),
                                   PlanShape::SingleMJoin(2), exec_config);
  PUNCTSAFE_CHECK_OK(exec.status());
  PUNCTSAFE_CHECK_OK(FeedTrace(exec.ValueOrDie().get(), trace));
  const auto& op = (*exec)->operators().front();
  state.counters["dropped_on_arrival"] = static_cast<double>(
      op->state_metrics(0).dropped_on_arrival +
      op->state_metrics(1).dropped_on_arrival);
  state.counters["punct_retired"] =
      static_cast<double>(op->punctuations_purged());
  state.counters["punct_live_end"] =
      static_cast<double>(op->TotalLivePunctuations());
}
BENCHMARK(BM_Ablation)
    ->ArgNames({"drop_arrivals", "punct_purge", "propagate"})
    ->Args({1, 0, 1})   // default configuration
    ->Args({0, 0, 1})   // no drop-on-arrival
    ->Args({1, 1, 1})   // + punctuation purgeability
    ->Args({1, 0, 0});  // no propagation bookkeeping

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
