// Experiment E6 (paper Figure 10 / Theorem 5): the transformed
// punctuation graph. Confirms the Figure 10 collapse (two merge
// rounds to a single virtual node), measures the transformation cost
// on the paper example and on random instances, and counts agreement
// between the literal Definition 11 rule and the reachability-closure
// variant against the Definition 9 fixpoint ground truth.

#include "bench_util.h"
#include "core/transformed_punctuation_graph.h"
#include "workload/random_query.h"

namespace punctsafe {
namespace {

void BM_Fig10Collapse(benchmark::State& state) {
  StreamCatalog catalog = bench::TriangleCatalog();
  ContinuousJoinQuery q = bench::TriangleQuery(catalog);
  SchemeSet schemes = bench::Fig8Schemes(catalog);
  size_t rounds = 0, final_nodes = 0;
  for (auto _ : state) {
    TransformedPunctuationGraph tpg =
        TransformedPunctuationGraph::Build(q, schemes);
    rounds = tpg.num_rounds();
    final_nodes = tpg.num_final_nodes();
    benchmark::DoNotOptimize(tpg);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["final_nodes"] = static_cast<double>(final_nodes);
}
BENCHMARK(BM_Fig10Collapse);

void BM_TpgModeAgreement(benchmark::State& state) {
  // Pre-generate instances so the loop times only the checking.
  std::vector<RandomQueryInstance> instances;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    RandomQueryConfig config;
    config.num_streams = 2 + seed % 5;
    config.multi_attr_prob = 0.5;
    config.second_scheme_prob = 0.4;
    config.seed = seed * 131 + 7;
    auto inst = MakeRandomQuery(config);
    PUNCTSAFE_CHECK_OK(inst.status());
    instances.push_back(std::move(inst).ValueOrDie());
  }
  size_t safe = 0, strict_agree = 0, closure_agree = 0;
  for (auto _ : state) {
    safe = strict_agree = closure_agree = 0;
    for (const RandomQueryInstance& inst : instances) {
      GeneralizedPunctuationGraph gpg =
          GeneralizedPunctuationGraph::Build(inst.query, inst.schemes);
      bool truth = gpg.IsStronglyConnected();
      safe += truth ? 1 : 0;
      auto strict = TransformedPunctuationGraph::BuildFromGpg(
          gpg, TransformedPunctuationGraph::Mode::kPaperStrict);
      auto closure = TransformedPunctuationGraph::BuildFromGpg(
          gpg, TransformedPunctuationGraph::Mode::kClosure);
      strict_agree += (strict.CollapsedToSingleNode() == truth) ? 1 : 0;
      closure_agree += (closure.CollapsedToSingleNode() == truth) ? 1 : 0;
    }
  }
  state.counters["instances"] = static_cast<double>(instances.size());
  state.counters["safe_instances"] = static_cast<double>(safe);
  state.counters["strict_agree"] = static_cast<double>(strict_agree);
  state.counters["closure_agree"] = static_cast<double>(closure_agree);
}
BENCHMARK(BM_TpgModeAgreement);

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
