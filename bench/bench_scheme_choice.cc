// Experiment E8 (paper Section 5.2, Plan Parameter I): which
// punctuation schemes to consume. Option (a) processes every
// available punctuation; option (b) only the minimal subset that
// keeps the punctuation graph strongly connected. (a) purges data
// sooner (lower state_hw) but stores/processes more punctuations;
// (b) saves punctuation work at the price of data memory — the
// trade-off the paper spells out.

#include "bench_util.h"
#include "plan/scheme_selection.h"
#include "util/rng.h"

namespace punctsafe {
namespace {

// Triangle trace carrying punctuations for ALL Figure-5-style schemes
// on both join attributes of every stream (rich scheme environment).
Trace RichTrace(size_t windows, size_t tuples_per_window) {
  Rng rng(41);
  Trace trace;
  int64_t now = 0;
  constexpr int64_t kPool = 3;
  for (size_t w = 0; w < windows; ++w) {
    int64_t base = static_cast<int64_t>(w) * kPool;
    auto val = [&]() { return Value(base + rng.NextInRange(0, kPool - 1)); };
    for (size_t t = 0; t < tuples_per_window; ++t) {
      const char* streams[] = {"S1", "S2", "S3"};
      trace.push_back({streams[rng.NextBelow(3)],
                       StreamElement::OfTuple(Tuple({val(), val()}), ++now)});
    }
    for (int64_t v = base; v < base + kPool; ++v) {
      for (const char* s : {"S1", "S2", "S3"}) {
        for (size_t attr = 0; attr < 2; ++attr) {
          trace.push_back(
              {s, StreamElement::OfPunctuation(
                      Punctuation::OfConstants(2, {{attr, Value(v)}}),
                      ++now)});
        }
      }
    }
  }
  return trace;
}

SchemeSet AllSchemes(const StreamCatalog& catalog) {
  SchemeSet set;
  for (const char* s : {"S1", "S2", "S3"}) {
    auto schema = catalog.Get(s);
    PUNCTSAFE_CHECK_OK(schema.status());
    for (const Attribute& a : (*schema)->attributes()) {
      PUNCTSAFE_CHECK_OK(set.Add(bench::SchemeOn(catalog, s, {a.name})));
    }
  }
  return set;
}

void BM_SchemeChoice(benchmark::State& state) {
  StreamCatalog catalog = bench::TriangleCatalog();
  ContinuousJoinQuery q = bench::TriangleQuery(catalog);
  SchemeSet all = AllSchemes(catalog);
  SchemeSet chosen = all;
  if (state.range(1) == 1) {
    auto minimal = MinimalSafeSchemeSubset(q, all);
    PUNCTSAFE_CHECK_OK(minimal.status());
    chosen = std::move(minimal).ValueOrDie();
  }
  state.counters["schemes_used"] = static_cast<double>(chosen.size());

  Trace trace = RichTrace(static_cast<size_t>(state.range(0)), 30);
  // Punctuations not matching a registered scheme still arrive; the
  // executor stores only what its scheme set can use for purging, so
  // restricting the scheme set models "ignore the irrelevant ones".
  Trace filtered;
  for (const TraceEvent& e : trace) {
    if (e.element.is_punctuation()) {
      bool usable = false;
      for (const PunctuationScheme* s : chosen.SchemesFor(e.stream)) {
        usable |= s->IsInstantiation(e.element.punctuation);
      }
      if (!usable) continue;
    }
    filtered.push_back(e);
  }
  state.counters["punctuations_fed"] = static_cast<double>(
      filtered.size() -
      std::count_if(filtered.begin(), filtered.end(),
                    [](const TraceEvent& e) { return e.element.is_tuple(); }));
  bench::RunTraceAndRecord(q, chosen, PlanShape::SingleMJoin(3), filtered,
                           {}, state);
}
BENCHMARK(BM_SchemeChoice)
    ->ArgNames({"windows", "minimal"})
    ->Args({50, 0})
    ->Args({200, 0})
    ->Args({50, 1})
    ->Args({200, 1});

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
