// Experiment E5 (paper Figures 8/9, Section 4.2): multi-attribute
// schemes. The simple punctuation graph calls the triangle query
// unsafe under ℜ = {S1(_,+), S2(+,_), S2(_,+), S3(+,+)}; the
// generalized graph proves it safe, and the runtime purge driven by
// the S3 pair punctuations keeps state bounded. Timing compares the
// linear PG check with the generalized fixpoint check.

#include "bench_util.h"
#include "core/generalized_punctuation_graph.h"
#include "core/punctuation_graph.h"
#include "util/rng.h"

namespace punctsafe {
namespace {

void BM_Fig8Verdicts(benchmark::State& state) {
  StreamCatalog catalog = bench::TriangleCatalog();
  ContinuousJoinQuery q = bench::TriangleQuery(catalog);
  SchemeSet schemes = bench::Fig8Schemes(catalog);
  bool pg_safe = true, gpg_safe = false;
  for (auto _ : state) {
    pg_safe = PunctuationGraph::Build(q, schemes).IsStronglyConnected();
    gpg_safe = GeneralizedPunctuationGraph::Build(q, schemes)
                   .IsStronglyConnected();
    benchmark::DoNotOptimize(gpg_safe);
  }
  state.counters["pg_says_safe"] = pg_safe ? 1 : 0;    // expected: 0
  state.counters["gpg_says_safe"] = gpg_safe ? 1 : 0;  // expected: 1
}
BENCHMARK(BM_Fig8Verdicts);

// Runtime side: generation-scoped trace with pair punctuations
// (a, c) on S3 plus the simple S1/S2 punctuations.
Trace Fig8Trace(size_t windows, size_t tuples_per_window) {
  Rng rng(31);
  Trace trace;
  int64_t now = 0;
  constexpr int64_t kPool = 3;
  for (size_t w = 0; w < windows; ++w) {
    int64_t base = static_cast<int64_t>(w) * kPool;
    auto val = [&]() { return Value(base + rng.NextInRange(0, kPool - 1)); };
    for (size_t t = 0; t < tuples_per_window; ++t) {
      const char* streams[] = {"S1", "S2", "S3"};
      trace.push_back({streams[rng.NextBelow(3)],
                       StreamElement::OfTuple(Tuple({val(), val()}), ++now)});
    }
    for (int64_t a = base; a < base + kPool; ++a) {
      // S1(_, +) on B and S2 schemes on B and C.
      trace.push_back({"S1", StreamElement::OfPunctuation(
                                 Punctuation::OfConstants(2, {{1, Value(a)}}),
                                 ++now)});
      trace.push_back({"S2", StreamElement::OfPunctuation(
                                 Punctuation::OfConstants(2, {{0, Value(a)}}),
                                 ++now)});
      trace.push_back({"S2", StreamElement::OfPunctuation(
                                 Punctuation::OfConstants(2, {{1, Value(a)}}),
                                 ++now)});
      // S3(+, +): every (C, A) pair of the window.
      for (int64_t c = base; c < base + kPool; ++c) {
        trace.push_back(
            {"S3", StreamElement::OfPunctuation(
                       Punctuation::OfConstants(
                           2, {{0, Value(c)}, {1, Value(a)}}),
                       ++now)});
      }
    }
  }
  return trace;
}

void BM_Fig8RuntimePurge(benchmark::State& state) {
  StreamCatalog catalog = bench::TriangleCatalog();
  ContinuousJoinQuery q = bench::TriangleQuery(catalog);
  SchemeSet schemes = bench::Fig8Schemes(catalog);
  Trace trace = Fig8Trace(static_cast<size_t>(state.range(0)), 30);
  bench::RunTraceAndRecord(q, schemes, PlanShape::SingleMJoin(3), trace, {},
                           state);
}
BENCHMARK(BM_Fig8RuntimePurge)->Arg(20)->Arg(80)->Arg(320);

}  // namespace
}  // namespace punctsafe

BENCHMARK_MAIN();
